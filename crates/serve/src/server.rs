//! The serving runtime: admission control, the batcher loop, and the
//! request lifecycle.
//!
//! ## Continuous batching
//!
//! Decode steps and **prefill chunks** flow through the same
//! [`DynamicBatcher`]. A prompt submitted via [`Server::submit_prefill`]
//! is split into bounded, power-of-two-ladder-aligned chunks
//! ([`pl_dnn::prefill_chunk_widths`] under [`ServerConfig::prefill_chunk`])
//! and admitted one chunk at a time: each batch packs **at most one**
//! prefill chunk next to its decode lanes, and a chunk's successor is
//! enqueued only after it executed. A 2048-token prompt therefore
//! interleaves with live decode traffic — decode steps complete between
//! (and alongside) its chunks — instead of monopolizing the pool for the
//! whole forward, and every chunk is visible to [`Server::in_flight`], so
//! drains and shutdown observe prefill work exactly like decode work.
//! The blocking [`Server::prefill`] is a wrapper over this path; a prompt
//! that fits in one chunk executes as a single forward and stays
//! **bit-identical** to the pre-chunking inline prefill.
//!
//! ## The checked-out-session interlock
//!
//! Executing a batch *checks sessions out* of the table so the parallel
//! region holds no lock while computing. A checked-out session leaves a
//! [`Slot::CheckedOut`] marker behind rather than vanishing: concurrent
//! submitters still resolve the tenant, a concurrent batch defers (rather
//! than bounces) work for it, and — the part that closes a real race — a
//! concurrent [`Server::close_session`] does not get `UnknownSession` for
//! a live session. The close instead parks a completion channel in the
//! marker and waits; when the executing batch checks the session back in
//! it sees the parked closer, frees the session (KV cache and all) and
//! hands over the generated-token count. Without the marker, a close
//! racing the execution window failed spuriously and the batch then
//! re-inserted the session as an untracked zombie.

use crate::batcher::{ChunkItem, DynamicBatcher, StepRequest, WorkItem};
use crate::policy::BatchModeTable;
use crate::prefill::PrefillJob;
use crate::session::{Session, SessionId, TenantId};
use crate::stats::ServerStats;
use crate::{ServeError, StepResult};
use parking_lot::{Mutex, RwLock};
use pl_autotuner::{batch_ladder, warm_gemm_db, warm_spmm_db, Constraints, GemmProblem, TuningDb};
use pl_dnn::{
    DecoderModel, DecoderState, KvPagePool, KvSnapshot, Precision, PrefixCache, DEFAULT_PAGE_TOKENS,
};
use pl_metrics::{
    Counter, Health, HealthTracker, Histogram, MetricsRegistry, MetricsSnapshot, SloWindow,
    Watchdog,
};
use pl_perfmodel::Platform;
use pl_runtime::ThreadPool;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving runtime knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of tenants (rings) admitted.
    pub tenants: usize,
    /// Upper bound on a coalesced decode batch.
    pub max_batch: usize,
    /// Per-tenant submission-ring capacity (the backpressure bound).
    pub queue_capacity: usize,
    /// Concurrent-session cap across all tenants.
    pub max_sessions: usize,
    /// KV capacity (tokens) given to every new session.
    pub kv_capacity: usize,
    /// Upper bound on a prefill chunk admitted through the batcher, in
    /// tokens (normalized up to a power of two so non-final chunks hit
    /// the warmed prefill ladder exactly). Prompts longer than this are
    /// split and interleave with decode traffic; prompts that fit execute
    /// as a single chunk, bit-identical to an unchunked forward.
    pub prefill_chunk: usize,
    /// How long a non-full batch lingers for stragglers before executing.
    pub coalesce_wait: Duration,
    /// Batcher sleep when no work is pending.
    pub idle_poll: Duration,
    /// Execute decode batches through the **fused** cross-session path
    /// ([`DecoderModel::step_batch_fused`]): one `hidden x B` GEMM per
    /// layer projection instead of B `hidden x 1` GEMVs. Off by default —
    /// the serial path is bit-identical to unbatched decode, the fused
    /// path trades that for arithmetic intensity (outputs agree to
    /// floating-point reassociation tolerance; see `crates/serve/README.md`
    /// for the accuracy contract).
    pub fused: bool,
    /// Numeric precision the served model's weight plans were built at.
    /// Defaults to [`Precision::F32`], which keeps every existing
    /// guarantee (serial decode bit-identical to unbatched decode).
    /// [`Precision::Int8`] serves a quantized model: ~4x less weight
    /// traffic per decode step, outputs within a bounded relative error of
    /// the f32 model (see `crates/serve/README.md`, "Precision"). The
    /// model handed to [`Server::new`] must have been built at this
    /// precision ([`DecoderModel::new_with_precision`]) — the constructor
    /// asserts it, so a config/model mismatch fails at startup, not with
    /// silently wrong tuning keys. Tuning-DB keys, kernel caches and trace
    /// spans are all precision-scoped through the plans themselves.
    pub precision: Precision,
    /// SLO target for decode step latency (µs): the p99 objective the
    /// per-tenant and shard-wide [`SloWindow`]s track violations
    /// against. Feeds the burn-rate gauges and [`Server::health`].
    pub slo_p99_us: u64,
    /// Rolling SLO window length in seconds.
    pub slo_window_s: u64,
    /// Stall-watchdog deadline: with work pending and no batch collected
    /// for this long, [`Server::health`] reports [`Health::Stalled`].
    pub watchdog_deadline: Duration,
    /// KV page size in tokens: the allocation granularity of the shard's
    /// shared [`KvPagePool`] every session's cache draws from. Paging is
    /// **bit-identical** to a contiguous cache — pages only change where
    /// KV rows live, never the arithmetic over them.
    pub kv_page_tokens: usize,
    /// Page budget for the shard's KV pool (`0` = unbounded). A bounded
    /// pool makes KV memory a hard resource: size it to the working set
    /// (`max_sessions * ceil(kv_capacity / kv_page_tokens)` covers the
    /// worst case with no sharing; prefix sharing and idle spill reduce
    /// the real demand, which is what the density benchmark measures).
    pub kv_pool_pages: usize,
    /// Hash-cons completed prompts into the shard's [`PrefixCache`] so
    /// sessions opening with a common prompt prefix **share** its KV
    /// pages copy-on-write. On by default — sharing never changes
    /// outputs: adopted pages hold bit-identical rows and the first
    /// divergent append splits the page for the writer.
    pub share_prefix: bool,
    /// Upper bound on the **sum of token widths** queued across all
    /// tenant rings (a decode step counts 1, a prefill chunk its width);
    /// `0` = unlimited. Bounds the KV/compute debt admission can take on
    /// ahead of execution — a submission that would exceed it bounces
    /// with [`ServeError::Backpressure`], same as a full ring.
    pub max_queued_tokens: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            tenants: 1,
            max_batch: 8,
            queue_capacity: 64,
            max_sessions: 64,
            kv_capacity: 128,
            prefill_chunk: 16,
            coalesce_wait: Duration::from_micros(200),
            idle_poll: Duration::from_millis(1),
            fused: false,
            precision: Precision::F32,
            slo_p99_us: 50_000,
            slo_window_s: 60,
            watchdog_deadline: Duration::from_secs(1),
            kv_page_tokens: DEFAULT_PAGE_TOKENS,
            kv_pool_pages: 0,
            share_prefix: true,
            max_queued_tokens: 0,
        }
    }
}

/// Capacity of the shard prefix cache (distinct prompt prefixes
/// hash-consed at a time; FIFO eviction beyond this).
const PREFIX_CACHE_ENTRIES: usize = 64;

/// A serialized session: everything another shard needs to re-admit it
/// ([`Server::import_session`]) and continue decoding **bit-identically**
/// — the dense, page-layout-independent KV snapshot plus the decode
/// counters. Produced by [`Server::export_session`]; the router's
/// `migrate_session` wraps the export → import handshake with the
/// quiesce/retry discipline it needs.
#[derive(Debug, Clone)]
pub struct SessionExport {
    /// Owning tenant — the importer places the session in the same ring.
    pub tenant: TenantId,
    /// Tokens decoded so far (carried so accounting survives the move).
    pub generated: u64,
    /// The dense KV snapshot.
    pub kv: KvSnapshot,
}

/// Pre-created per-tenant metric handles: the hot path records through
/// these (atomics only — the registry lock is never taken after
/// construction).
struct TenantMetrics {
    steps: Counter,
    prefill_chunks: Counter,
    rejected: Counter,
    queue_wait: Histogram,
    execute: Histogram,
    burn: pl_metrics::Gauge,
    slo: SloWindow,
}

/// A session-table slot: either the live session, or the marker left
/// behind while an executing batch holds the session (see the module docs
/// on the checked-out interlock).
enum Slot {
    /// Resident and claimable.
    Live(Session),
    /// Checked out by an executing batch/prefill chunk.
    CheckedOut {
        /// Owning tenant (submitters still need to resolve the ring).
        tenant: TenantId,
        /// The session's ticket dispenser (shared with the live
        /// [`Session`]), so steps submitted during the window still draw
        /// ordered tickets.
        submit_seq: Arc<AtomicU64>,
        /// Parked by a concurrent `close_session`: at check-in the session
        /// is freed instead of re-inserted and the generated-token count
        /// is sent here.
        closer: Option<mpsc::Sender<u64>>,
    },
}

/// One checked-out batch entry: the work item plus its claimed session.
enum ReadyItem {
    Decode(StepRequest, Session),
    Chunk(ChunkItem, Session),
}

impl ReadyItem {
    fn session_id(&self) -> SessionId {
        match self {
            ReadyItem::Decode(req, _) => req.session,
            ReadyItem::Chunk(c, _) => c.job.session(),
        }
    }
}

struct ServerInner {
    model: Arc<DecoderModel>,
    pool: Arc<ThreadPool>,
    cfg: ServerConfig,
    sessions: Mutex<HashMap<SessionId, Slot>>,
    session_count: AtomicU64,
    next_session: AtomicU64,
    batcher: DynamicBatcher,
    stats: ServerStats,
    shutdown: AtomicBool,
    /// Whether a background batcher thread is driving [`Server::pump`] —
    /// the blocking wrappers pump on the calling thread when it is not.
    running: AtomicBool,
    tuning: Mutex<TuningDb>,
    /// The measured per-batch-width fused-vs-serial decision table
    /// ([`crate::policy::BatchModeTable`]), installed by a retune cycle.
    /// `None` (the default) falls back to the static
    /// [`ServerConfig::fused`] flag — existing behavior and guarantees
    /// are untouched until a measurement says otherwise.
    mode_policy: RwLock<Option<BatchModeTable>>,
    /// Live prefill-chunk bound in tokens — initialized from
    /// [`ServerConfig::prefill_chunk`], adjustable at runtime
    /// ([`Server::set_prefill_chunk`]) so a retune cycle can shrink
    /// chunks under decode load without restarting the server. Read once
    /// per prefill submission; in-flight jobs keep their chunking.
    prefill_chunk: AtomicUsize,
    /// Accepted work items (decode steps *and* prefill chunks) not yet
    /// retired — incremented before an item is published to the batcher,
    /// decremented at reply delivery ([`ServerInner::deliver`]); a
    /// non-final prefill chunk's unit is **carried over** to its
    /// successor (nothing is delivered for it), so accepted work is
    /// counted even while its batch holds the session checked out of the
    /// table and across chunk boundaries of one prefill. This is the
    /// quiescence signal drains rely on.
    in_flight: AtomicU64,
    /// The labeled metrics registry (Prometheus/JSON exposition).
    metrics: MetricsRegistry,
    /// Per-tenant handle sets, indexed by tenant id.
    tenant_metrics: Vec<TenantMetrics>,
    /// Batches-executed counter mirrored into the registry.
    batches_total: Counter,
    /// Shard-wide SLO window over decode step latency — what
    /// [`Server::health`] derives its burn rate from.
    slo: SloWindow,
    /// Degraded/healthy state machine with hysteresis.
    health: HealthTracker,
    /// Stalled-pump detector over `(pending, batches)`.
    watchdog: Watchdog,
    /// The shard's shared KV page pool: every session's cache is a page
    /// table over this ([`DecoderModel::new_state_in`]), so free pages,
    /// prefix-shared pages and spilled sessions are shard-level facts.
    kv_pool: Arc<KvPagePool>,
    /// Hash-consed completed prompts → shared KV page runs.
    prefix: PrefixCache,
    /// Sessions imported from another shard ([`Server::import_session`]).
    migrations: Counter,
}

impl ServerInner {
    /// Delivers a reply and retires its in-flight count. Every accepted
    /// item's terminal reply must go through here exactly once.
    fn deliver(&self, reply: &mpsc::Sender<StepResult>, result: StepResult) {
        let _ = reply.send(result);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }

    /// Checks `sess` back into the table after its batch window. If a
    /// closer parked on the slot meanwhile, the session is freed here and
    /// the closer receives its generated-token count; otherwise the slot
    /// goes back to [`Slot::Live`].
    fn check_in(&self, sessions: &mut HashMap<SessionId, Slot>, id: SessionId, sess: Session) {
        match sessions.remove(&id) {
            Some(Slot::CheckedOut { closer: Some(done), .. }) => {
                self.session_count.fetch_sub(1, Ordering::AcqRel);
                let _ = done.send(sess.generated);
            }
            _ => {
                sessions.insert(id, Slot::Live(sess));
            }
        }
    }
}

/// The multi-tenant batched serving runtime over one shared
/// [`DecoderModel`].
///
/// Lifecycle: [`Server::new`] → optionally [`Server::warm_tuning`] →
/// either [`Server::start`] (background batcher thread; clients call the
/// blocking [`Server::step`] / [`Server::prefill`]) or manual
/// [`Server::pump`] (tests, single-threaded drivers). Protocol: **one
/// submitter per session** — a session's submits are issued from one
/// thread at a time (pipelining several in-flight steps from that thread
/// is fine; program-order tickets keep them ordered). The blocking API
/// upholds this by construction; racing submits to one session from two
/// threads can duplicate a ticket across a backpressure rollback, which
/// batch checkout rejects with [`ServeError::StaleTicket`].
pub struct Server {
    inner: Arc<ServerInner>,
    batcher_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// A server over `model`, executing on `pool`. Panics when `model`'s
    /// precision does not match [`ServerConfig::precision`]: the config is
    /// what warm-up, routers and benchmarks key on, so a mismatch would
    /// warm the wrong tuning keys and misreport every precision-scoped
    /// artifact.
    pub fn new(model: Arc<DecoderModel>, pool: Arc<ThreadPool>, cfg: ServerConfig) -> Self {
        assert_eq!(
            model.precision(),
            cfg.precision,
            "model precision must match ServerConfig::precision"
        );
        let metrics = MetricsRegistry::new();
        metrics.help("pl_steps_total", "Decode steps delivered, per tenant");
        metrics.help("pl_prefill_chunks_total", "Prefill chunks executed, per tenant");
        metrics.help("pl_rejected_backpressure_total", "Submissions bounced on a full ring");
        metrics.help("pl_queue_wait_us", "Submit-to-collect latency (log2 buckets, µs)");
        metrics.help("pl_execute_us", "Collect-to-reply latency (log2 buckets, µs)");
        metrics.help("pl_batches_total", "Batches executed");
        metrics.help("pl_slo_burn_rate", "Windowed SLO violation fraction over the error budget");
        metrics.help("pl_sessions_live", "Live sessions");
        metrics.help("pl_pending", "Work items queued but not executing");
        metrics.help("pl_in_flight", "Accepted work not yet delivered");
        metrics.help("pl_shard_health", "0 healthy, 1 degraded, 2 draining, 3 stalled");
        metrics.help("pl_kv_pages_free", "Recycled KV pages available in the shard pool");
        metrics.help("pl_kv_pages_shared", "KV pages shared by more than one owner (prefix cache)");
        metrics.help("pl_kv_sessions_spilled", "Live sessions whose KV is spilled to a snapshot");
        metrics.help("pl_migrations_total", "Sessions imported from another shard");
        let tenant_metrics = (0..cfg.tenants)
            .map(|t| {
                let tenant = t.to_string();
                let labels: [(&str, &str); 1] = [("tenant", tenant.as_str())];
                TenantMetrics {
                    steps: metrics.counter("pl_steps_total", &labels),
                    prefill_chunks: metrics.counter("pl_prefill_chunks_total", &labels),
                    rejected: metrics.counter("pl_rejected_backpressure_total", &labels),
                    queue_wait: metrics.histogram("pl_queue_wait_us", &labels),
                    execute: metrics.histogram("pl_execute_us", &labels),
                    burn: metrics.gauge("pl_slo_burn_rate", &labels),
                    slo: SloWindow::new(cfg.slo_p99_us, cfg.slo_window_s),
                }
            })
            .collect();
        let batches_total = metrics.counter("pl_batches_total", &[]);
        let migrations = metrics.counter("pl_migrations_total", &[]);
        let page_tokens = cfg.kv_page_tokens.max(1);
        let kv_pool = if cfg.kv_pool_pages > 0 {
            KvPagePool::bounded(model.config().hidden, page_tokens, cfg.kv_pool_pages)
        } else {
            KvPagePool::new(model.config().hidden, page_tokens)
        };
        let inner = Arc::new(ServerInner {
            batcher: DynamicBatcher::bounded(
                cfg.tenants,
                cfg.queue_capacity,
                cfg.max_queued_tokens,
            ),
            kv_pool,
            prefix: PrefixCache::new(PREFIX_CACHE_ENTRIES),
            migrations,
            stats: ServerStats::new(cfg.max_batch),
            mode_policy: RwLock::new(None),
            prefill_chunk: AtomicUsize::new(cfg.prefill_chunk.max(1)),
            slo: SloWindow::new(cfg.slo_p99_us, cfg.slo_window_s),
            health: HealthTracker::default(),
            watchdog: Watchdog::new(cfg.watchdog_deadline),
            metrics,
            tenant_metrics,
            batches_total,
            model,
            pool,
            cfg,
            sessions: Mutex::new(HashMap::new()),
            session_count: AtomicU64::new(0),
            next_session: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            running: AtomicBool::new(false),
            tuning: Mutex::new(TuningDb::new()),
            in_flight: AtomicU64::new(0),
        });
        Server { inner, batcher_thread: None }
    }

    /// The metrics surface.
    pub fn stats(&self) -> &ServerStats {
        &self.inner.stats
    }

    /// The labeled metrics registry — per-tenant counters and latency
    /// histograms accumulate here; scrape through
    /// [`Server::metrics_snapshot`] +
    /// [`pl_metrics::render_prometheus`].
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// The shard-wide SLO window over decode step latency. Public so
    /// operators (and tests) can inspect the burn rate — or inject
    /// observations via [`SloWindow::record`] to drive
    /// [`Server::health`] deterministically.
    pub fn slo(&self) -> &SloWindow {
        &self.inner.slo
    }

    /// Per-tenant SLO window (`None` for an out-of-range tenant).
    pub fn tenant_slo(&self, tenant: TenantId) -> Option<&SloWindow> {
        self.inner.tenant_metrics.get(tenant).map(|tm| &tm.slo)
    }

    /// Current health of this server: feeds one `(pending, batches)`
    /// observation to the stall watchdog, folds the shard-wide SLO burn
    /// rate through the hysteresis tracker, and reports
    /// `Healthy | Degraded | Stalled` (a router overlays `Draining` on
    /// top — administrative intent lives above the server). Degraded
    /// entry/exit uses the [`pl_metrics::HealthTracker`] hysteresis band
    /// so a shard hovering at the threshold does not flap in and out of
    /// placement.
    pub fn health(&self) -> Health {
        let stalled = self
            .inner
            .watchdog
            .check(self.pending() as u64, self.inner.stats.batches.load(Ordering::Relaxed));
        self.inner.health.evaluate(self.inner.slo.burn_rate(), stalled)
    }

    /// Point-in-time metrics snapshot: samples the liveness gauges
    /// (sessions, queue depths, per-tenant burn rates, shard health) and
    /// returns a copy of every series. Render with
    /// [`pl_metrics::render_prometheus`] or
    /// [`pl_metrics::snapshot_to_json`]; merge shard snapshots with
    /// [`MetricsSnapshot::merge`] after
    /// [`MetricsSnapshot::with_label`]-stamping them.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let m = &self.inner.metrics;
        m.gauge("pl_sessions_live", &[]).set(self.session_count() as f64);
        m.gauge("pl_pending", &[]).set(self.pending() as f64);
        m.gauge("pl_in_flight", &[]).set(self.in_flight() as f64);
        for tm in &self.inner.tenant_metrics {
            tm.burn.set(tm.slo.burn_rate());
        }
        m.gauge("pl_shard_health", &[]).set(self.health().as_f64());
        m.gauge("pl_kv_pages_free", &[]).set(self.inner.kv_pool.free_pages() as f64);
        m.gauge("pl_kv_pages_shared", &[]).set(self.inner.prefix.shared_pages() as f64);
        m.gauge("pl_kv_sessions_spilled", &[]).set(self.spilled_sessions() as f64);
        m.snapshot()
    }

    /// The shared model.
    pub fn model(&self) -> &Arc<DecoderModel> {
        &self.inner.model
    }

    /// Live session count.
    pub fn session_count(&self) -> usize {
        self.inner.session_count.load(Ordering::Relaxed) as usize
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.inner.cfg
    }

    /// Work items queued but not yet executed — decode steps and prefill
    /// chunks, across all tenant rings plus the deferred side-queue
    /// (approximate — rings are concurrent). This is the queue-depth
    /// signal a fronting router uses for least-loaded placement and for
    /// graceful drains.
    pub fn pending(&self) -> usize {
        self.inner.batcher.pending()
    }

    /// Accepted work whose terminal reply has **not yet been delivered** —
    /// decode steps and prefill chunks, queued in a ring *or* executing
    /// inside a batch (where the session is checked out of the table and
    /// [`Server::pending`] no longer sees it). The counter moves at
    /// submit, at reply delivery, and across prefill chunk hand-offs
    /// (successor enqueued before the completed chunk retires), so there
    /// is no window where accepted work is invisible: this is the
    /// quiescence signal for graceful drains (`pending() == 0` alone
    /// races the batch-execution window — and, before chunked prefill,
    /// missed in-progress prefills entirely).
    pub fn in_flight(&self) -> usize {
        self.inner.in_flight.load(Ordering::Acquire) as usize
    }

    /// The per-layer weight GEMMs at token/batch width `n`, reported **by
    /// the model's prepared plans themselves**
    /// ([`DecoderModel::plan_problems`]): each plan names the exact
    /// `(m, n, k)` + blocking its kernel will execute, so the warmed keys
    /// are the shapes that actually run — no hand-maintained shape list to
    /// drift out of sync with the execution layer.
    fn layer_gemm_problems(&self, n: usize, out: &mut Vec<GemmProblem>) {
        self.inner.model.plan_problems(n, out);
    }

    /// Every activation width the batcher can produce: decode widths
    /// `1..=max_batch` plus the prefill prompt-width ladder.
    fn plan_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = (1..=self.inner.cfg.max_batch.max(1)).collect();
        for t in batch_ladder(self.inner.cfg.kv_capacity) {
            if !widths.contains(&t) {
                widths.push(t);
            }
        }
        widths
    }

    /// GEMM problems the batcher's decode steps can run: for every
    /// transformer block matmul, one instance per batch width the fused
    /// path can see — **every** `B ∈ 1..=max_batch`, since the batcher
    /// hands the fused path whatever ragged width was pending and the
    /// tuning-DB lookup is exact-match. Serial batched decode only ever
    /// runs the `B = 1` entries; the fused path hits the wider ones.
    pub fn decode_gemm_problems(&self) -> Vec<GemmProblem> {
        let mut out = Vec::new();
        for b in 1..=self.inner.cfg.max_batch.max(1) {
            self.layer_gemm_problems(b, &mut out);
        }
        out
    }

    /// GEMM problems prefill forwards run: the same per-layer matmuls at
    /// prompt widths `tokens ∈ {2, 4, 8, …} ∪ {kv_capacity}` (`tokens = 1`
    /// already rides the decode set). Prompts land on arbitrary lengths;
    /// the power-of-two ladder covers the widths the roofline actually
    /// distinguishes, and `pl_dnn::tuning` rounds a missed lookup up to
    /// the next power of two so in-between prompt lengths still reuse the
    /// nearest warmed spec. Chunked prefill is cut to this same ladder
    /// ([`pl_dnn::prefill_chunk_widths`]), so every non-final chunk is an
    /// **exact** hit on a warmed key.
    pub fn prefill_gemm_problems(&self) -> Vec<GemmProblem> {
        let mut out = Vec::new();
        for t in batch_ladder(self.inner.cfg.kv_capacity) {
            if t > 1 {
                self.layer_gemm_problems(t, &mut out);
            }
        }
        out
    }

    /// Warms the tuning database for every GEMM shape the server can
    /// execute — decode at **every** batch width `1..=max_batch`
    /// ([`Server::decode_gemm_problems`]) *and* prefill at the prompt-width
    /// ladder ([`Server::prefill_gemm_problems`]) — on `platform`: the
    /// paper's offline search (Fig. 1 boxes B2/B3) runs at server startup
    /// so results are ready before traffic arrives. The same geometry is
    /// also warmed under the `spmm/...` keys ([`warm_spmm_db`], the
    /// minimal model-based SpMM warm-up), so a block-sparse variant served
    /// over this model resolves warmed specs instead of always falling
    /// through to `default_parallel`.
    ///
    /// The warmed snapshot is then **installed** into [`pl_dnn::tuning`]
    /// and the model's prepared plans are warmed *through* it
    /// ([`DecoderModel::warm_plans`] at every width the batcher can
    /// produce): every kernel a steady-state step can hit is constructed
    /// here, against the freshly tuned specs, before traffic arrives.
    /// Returns the number of database entries added (GEMM + SpMM keys).
    pub fn warm_tuning(&self, platform: &Platform, threads: usize) -> usize {
        let mut problems = self.decode_gemm_problems();
        problems.extend(self.prefill_gemm_problems());
        let constraints = Constraints::gemm(0, 1, 1, 200);
        let added = {
            let mut db = self.inner.tuning.lock();
            let gemm_added = warm_gemm_db(&mut db, &problems, &constraints, platform, threads);
            let spmm_added = warm_spmm_db(&mut db, &problems, &constraints, platform, threads);
            pl_dnn::tuning::install(platform.name, db.clone());
            gemm_added + spmm_added
        };
        self.inner.model.warm_plans(&self.plan_widths());
        added
    }

    /// Read access to the warmed tuning database.
    pub fn tuning_db(&self) -> parking_lot::MutexGuard<'_, TuningDb> {
        self.inner.tuning.lock()
    }

    /// Adopts an already-warmed tuning snapshot instead of re-running the
    /// search — the multi-shard path: a router warms **one** shard with
    /// [`Server::warm_tuning`] and hands the resulting snapshot to its
    /// peers, so N shards pay one offline search, not N. The snapshot
    /// replaces this server's local DB and is **unconditionally**
    /// installed into the process-wide [`pl_dnn::tuning`] registry
    /// (kernels resolve from the registry, so skipping the install when
    /// some other snapshot is live would silently leave stale tuning in
    /// effect); the install bumps the registry epoch, and the model's
    /// plans are warmed through the new snapshot before returning.
    /// Returns the number of entries adopted.
    pub fn adopt_tuning(&self, platform_name: &str, db: &TuningDb) -> usize {
        pl_dnn::tuning::install(platform_name, db.clone());
        self.inner.model.warm_plans(&self.plan_widths());
        self.set_tuning_db(db)
    }

    /// Copies `db` into this server's local tuning slot **only** — no
    /// registry install, no plan warm-up. This is the peer-shard fast
    /// path: when another server over the *same shared model* already
    /// installed this snapshot and warmed the plans (both process-wide
    /// effects), repeating them per shard would only bump the registry
    /// epoch and rebuild identical kernels N times. Use
    /// [`Server::adopt_tuning`] when the snapshot is *not* already live
    /// (e.g. loaded from disk). Returns the number of entries copied.
    pub fn set_tuning_db(&self, db: &TuningDb) -> usize {
        *self.inner.tuning.lock() = db.clone();
        db.len()
    }

    /// Installs a measured per-batch-width fused-vs-serial decision table
    /// (see [`BatchModeTable`]). Takes effect on the **next** batch —
    /// batches already executing finish under the old decision, so there
    /// is no downtime and no torn batch. Pass an empty table to revert to
    /// the static [`ServerConfig::fused`] flag.
    pub fn install_mode_policy(&self, table: BatchModeTable) {
        let mut slot = self.inner.mode_policy.write();
        *slot = if table.is_empty() { None } else { Some(table) };
    }

    /// The installed measured mode policy, if any.
    pub fn mode_policy(&self) -> Option<BatchModeTable> {
        self.inner.mode_policy.read().clone()
    }

    /// Adjusts the live prefill-chunk bound (tokens, clamped to ≥ 1).
    /// Prefills submitted after this call chunk at the new bound;
    /// in-flight jobs keep the chunking they were admitted with.
    pub fn set_prefill_chunk(&self, tokens: usize) {
        self.inner.prefill_chunk.store(tokens.max(1), Ordering::Release);
    }

    /// The live prefill-chunk bound (tokens).
    pub fn prefill_chunk(&self) -> usize {
        self.inner.prefill_chunk.load(Ordering::Acquire)
    }

    /// The GEMM problems that dominated traffic so far, hottest first —
    /// the retune loop's harvest hook. Weights come from
    /// [`ServerStats::fused_gemm_shapes`] (the per-shape execution counts
    /// the fused path records, covering every ragged width that actually
    /// ran); a server that only ever ran the serial path has no shape
    /// histogram, so its decode traffic is attributed to the width-1
    /// problems weighted by completed steps (what serial decode executes
    /// per lane). Shapes are matched back against the model's own
    /// prepared-plan problems ([`DecoderModel::plan_problems`]), so every
    /// returned problem carries the **exact blocking** its kernel runs
    /// at, precision included — measurable as-is.
    pub fn hot_gemm_problems(&self) -> Vec<(GemmProblem, u64)> {
        let mut catalog = self.decode_gemm_problems();
        catalog.extend(self.prefill_gemm_problems());
        let mut out: Vec<(GemmProblem, u64)> = Vec::new();
        let shapes = self.inner.stats.fused_gemm_shapes();
        if shapes.is_empty() {
            let steps = self.inner.stats.completed.load(Ordering::Relaxed);
            if steps > 0 {
                for p in catalog.iter().filter(|p| p.n == 1) {
                    out.push((*p, steps));
                }
            }
        } else {
            for ((m, n, k), count) in shapes {
                if let Some(p) = catalog.iter().find(|p| p.m == m && p.n == n && p.k == k) {
                    out.push((*p, count));
                }
            }
        }
        out.sort_by_key(|&(_, w)| std::cmp::Reverse(w));
        out
    }

    /// Admits a new session for `tenant`. Rejects when the session cap is
    /// reached or the tenant id is out of range.
    pub fn create_session(&self, tenant: TenantId) -> Result<SessionId, ServeError> {
        if tenant >= self.inner.cfg.tenants {
            return Err(ServeError::UnknownTenant(tenant));
        }
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        // Optimistic admission: bump, then verify the cap.
        let live = self.inner.session_count.fetch_add(1, Ordering::AcqRel) + 1;
        if live as usize > self.inner.cfg.max_sessions {
            self.inner.session_count.fetch_sub(1, Ordering::AcqRel);
            self.inner.stats.rejected_sessions.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::TooManySessions { limit: self.inner.cfg.max_sessions });
        }
        let id = self.inner.next_session.fetch_add(1, Ordering::Relaxed);
        let state = self.inner.model.new_state_in(&self.inner.kv_pool, self.inner.cfg.kv_capacity);
        self.inner.sessions.lock().insert(id, Slot::Live(Session::new(id, tenant, state)));
        Ok(id)
    }

    /// The shard's shared KV page pool — paged-KV observability: resident
    /// vs free pages, the peak, and how many COW splits sharing caused.
    pub fn kv_pool(&self) -> &Arc<KvPagePool> {
        &self.inner.kv_pool
    }

    /// The shard's prompt prefix cache.
    pub fn prefix_cache(&self) -> &PrefixCache {
        &self.inner.prefix
    }

    /// Spills a live session's KV cache into a dense snapshot, returning
    /// its pages to the pool. `Ok(true)` if the session spilled now;
    /// `Ok(false)` if it already was, held no tokens, or is momentarily
    /// checked out by an executing batch. The session stays live — its
    /// next work item restores the pages transparently (bit-identically:
    /// the snapshot preserves every KV row).
    pub fn spill_session(&self, id: SessionId) -> Result<bool, ServeError> {
        let mut sessions = self.inner.sessions.lock();
        match sessions.get_mut(&id) {
            None => Err(ServeError::UnknownSession(id)),
            Some(Slot::Live(sess)) => Ok(sess.state.spill()),
            Some(Slot::CheckedOut { .. }) => Ok(false),
        }
    }

    /// Spills every live session that has executed no work for at least
    /// `min_idle` (see [`Session::last_active`]). Returns how many
    /// sessions spilled. The pool-level effect is what matters: an idle
    /// session's pages become reusable by active sessions, so a shard
    /// over-committed on sessions keeps serving as long as the *active*
    /// working set fits.
    pub fn spill_idle(&self, min_idle: Duration) -> usize {
        let now = Instant::now();
        let mut sessions = self.inner.sessions.lock();
        let mut spilled = 0;
        for slot in sessions.values_mut() {
            if let Slot::Live(sess) = slot {
                if now.duration_since(sess.last_active) >= min_idle && sess.state.spill() {
                    spilled += 1;
                }
            }
        }
        spilled
    }

    /// Live sessions currently holding their KV as a spilled snapshot.
    pub fn spilled_sessions(&self) -> usize {
        let sessions = self.inner.sessions.lock();
        sessions
            .values()
            .filter(|s| matches!(s, Slot::Live(sess) if sess.state.is_spilled()))
            .count()
    }

    /// Removes a live session and serializes it for re-admission
    /// elsewhere ([`Server::import_session`]). Fails with
    /// [`ServeError::SessionBusy`] while an executing batch holds the
    /// session checked out (retry — the window is one batch execution);
    /// callers should quiesce the shard first so no queued work is
    /// orphaned (work submitted after the export errors
    /// `UnknownSession`, exactly like work after a close).
    pub fn export_session(&self, id: SessionId) -> Result<SessionExport, ServeError> {
        let mut sessions = self.inner.sessions.lock();
        match sessions.get(&id) {
            None => return Err(ServeError::UnknownSession(id)),
            Some(Slot::CheckedOut { .. }) => return Err(ServeError::SessionBusy { session: id }),
            Some(Slot::Live(_)) => {}
        }
        let Some(Slot::Live(sess)) = sessions.remove(&id) else { unreachable!() };
        self.inner.session_count.fetch_sub(1, Ordering::AcqRel);
        Ok(SessionExport {
            tenant: sess.tenant,
            generated: sess.generated,
            kv: sess.state.snapshot(),
        })
    }

    /// Admits an exported session on this shard: same admission checks as
    /// [`Server::create_session`], then the KV snapshot is rehydrated
    /// into this shard's page pool — decoding continues bit-identically
    /// from where the source shard stopped. Returns the session's **new**
    /// id (ids are shard-local; the router rebinds its global id).
    /// Counts toward `pl_migrations_total`.
    pub fn import_session(&self, export: &SessionExport) -> Result<SessionId, ServeError> {
        if export.tenant >= self.inner.cfg.tenants {
            return Err(ServeError::UnknownTenant(export.tenant));
        }
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let live = self.inner.session_count.fetch_add(1, Ordering::AcqRel) + 1;
        if live as usize > self.inner.cfg.max_sessions {
            self.inner.session_count.fetch_sub(1, Ordering::AcqRel);
            self.inner.stats.rejected_sessions.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::TooManySessions { limit: self.inner.cfg.max_sessions });
        }
        let state = match self.inner.model.state_from_snapshot(&self.inner.kv_pool, &export.kv) {
            Ok(state) => state,
            Err(_) => {
                self.inner.session_count.fetch_sub(1, Ordering::AcqRel);
                return Err(ServeError::KvExhausted {
                    context: export.kv.len(),
                    capacity: export.kv.capacity(),
                });
            }
        };
        let id = self.inner.next_session.fetch_add(1, Ordering::Relaxed);
        let mut sess = Session::new(id, export.tenant, state);
        sess.generated = export.generated;
        self.inner.sessions.lock().insert(id, Slot::Live(sess));
        self.inner.migrations.inc();
        Ok(id)
    }

    /// Ends a session, freeing its KV cache. Returns how many tokens it
    /// decoded.
    ///
    /// If the session is momentarily **checked out** by an executing batch
    /// or prefill chunk, the close interlocks with that window instead of
    /// failing: it parks a completion channel in the slot and waits for
    /// the batch to check the session back in (microseconds — one batch
    /// execution), at which point the session is freed on the batcher's
    /// side and the token count handed over. Work still queued for the
    /// session afterwards errors `UnknownSession` through its reply
    /// channel, exactly as if the close had happened first.
    pub fn close_session(&self, id: SessionId) -> Result<u64, ServeError> {
        let done = {
            let mut sessions = self.inner.sessions.lock();
            match sessions.get_mut(&id) {
                None => return Err(ServeError::UnknownSession(id)),
                Some(Slot::Live(_)) => {
                    let Some(Slot::Live(sess)) = sessions.remove(&id) else { unreachable!() };
                    self.inner.session_count.fetch_sub(1, Ordering::AcqRel);
                    return Ok(sess.generated);
                }
                Some(Slot::CheckedOut { closer, .. }) => {
                    if closer.is_some() {
                        // A concurrent close already parked; first one wins.
                        return Err(ServeError::UnknownSession(id));
                    }
                    let (tx, rx) = mpsc::channel();
                    *closer = Some(tx);
                    rx
                }
            }
        };
        done.recv().map_err(|_| ServeError::UnknownSession(id))
    }

    /// Submits a prefill without blocking: the prompt (`hidden x tokens`,
    /// column-major) is split into ladder-aligned chunks of at most
    /// [`ServerConfig::prefill_chunk`] tokens and admitted through the
    /// batcher one chunk at a time, interleaving with decode traffic. The
    /// full `hidden x tokens` output arrives on the returned channel once
    /// the final chunk executes (or the error that aborted the prefill —
    /// e.g. the session was closed mid-prefill). Every chunk counts
    /// toward [`Server::in_flight`] from submission to completion.
    pub fn submit_prefill(
        &self,
        id: SessionId,
        x: &[f32],
        tokens: usize,
    ) -> Result<mpsc::Receiver<StepResult>, ServeError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let hidden = self.inner.model.config().hidden;
        if x.len() != hidden * tokens || tokens == 0 {
            return Err(ServeError::BadInput { expected: hidden * tokens.max(1), got: x.len() });
        }
        let (tenant, tickets) = self.admit(id, tokens)?;
        // The whole job draws ONE program-order ticket: its chunks check
        // out under it and the cursor advances only when the job finishes,
        // so a decode step pipelined behind the prefill waits for every
        // chunk instead of slipping in between two of them.
        let seq = tickets.fetch_add(1, Ordering::AcqRel);
        let (job, rx) = PrefillJob::new(
            id,
            tenant,
            seq,
            hidden,
            x.to_vec(),
            tokens,
            self.inner.prefill_chunk.load(Ordering::Acquire),
        );
        let item = WorkItem::PrefillChunk(ChunkItem { job, chunk: 0, enqueued: Instant::now() });
        self.publish(&tickets, item)?;
        Ok(rx)
    }

    /// Shared admission lookup for [`Server::submit_step`] and
    /// [`Server::submit_prefill`]: resolves the session's tenant and
    /// program-order ticket dispenser. A `Live` session is validated for
    /// `need` tokens of KV capacity (decode passes 0 — its one token is
    /// checked at batch checkout, preserving the delivered-error path). A
    /// `CheckedOut` session is still live — the marker shares the ticket
    /// dispenser — but its state is with the executing batch, so the
    /// capacity check is deferred to checkout, which validates a
    /// prefill's **whole remaining prompt** atomically: an oversized
    /// prompt is rejected before any token appends, never leaving a
    /// partial prefill behind.
    fn admit(&self, id: SessionId, need: usize) -> Result<(TenantId, Arc<AtomicU64>), ServeError> {
        let sessions = self.inner.sessions.lock();
        match sessions.get(&id) {
            None => Err(ServeError::UnknownSession(id)),
            Some(Slot::Live(sess)) => {
                if !sess.fits(need) {
                    return Err(ServeError::KvExhausted {
                        context: sess.context_len(),
                        capacity: self.inner.cfg.kv_capacity,
                    });
                }
                Ok((sess.tenant, Arc::clone(&sess.submit_seq)))
            }
            Some(Slot::CheckedOut { tenant, submit_seq, .. }) => {
                Ok((*tenant, Arc::clone(submit_seq)))
            }
        }
    }

    /// Shared publication tail for admitted work: counts the item
    /// in-flight **before** the ring push (a concurrent batcher may
    /// execute and deliver it — retiring the count — at any moment;
    /// incrementing afterwards could transiently wrap the counter below
    /// zero), closes the check-then-push race with `shutdown()` (if the
    /// flag flipped while enqueueing, the batcher and shutdown's drain may
    /// already be gone — bounce whatever is pending so no caller blocks
    /// forever), and on a full ring rolls back the drawn ticket and the
    /// in-flight unit. The ticket rollback is safe under the documented
    /// **one-submitter-per-session** protocol: the same thread observes
    /// the backpressure error before its next submit, so no later ticket
    /// for this session can have been drawn concurrently. If the protocol
    /// is violated and the rollback duplicates a published ticket, batch
    /// checkout rejects the duplicate with [`ServeError::StaleTicket`]
    /// rather than deferring it forever.
    fn publish(&self, tickets: &AtomicU64, item: WorkItem) -> Result<(), ServeError> {
        self.inner.in_flight.fetch_add(1, Ordering::AcqRel);
        match self.inner.batcher.submit(item) {
            Ok(()) => {
                if self.inner.shutdown.load(Ordering::Acquire) {
                    self.bounce_pending();
                }
                Ok(())
            }
            Err(item) => {
                tickets.fetch_sub(1, Ordering::AcqRel);
                self.inner.in_flight.fetch_sub(1, Ordering::AcqRel);
                self.inner.stats.rejected_backpressure.fetch_add(1, Ordering::Relaxed);
                if let Some(tm) = self.inner.tenant_metrics.get(item.tenant()) {
                    tm.rejected.inc();
                }
                Err(ServeError::Backpressure { tenant: item.tenant() })
            }
        }
    }

    /// Blocking whole-prompt prefill (`hidden x tokens`, column-major) for
    /// `id`: a wrapper over the chunked [`Server::submit_prefill`] path.
    /// With a background batcher ([`Server::start`]) the call simply waits
    /// for completion while the chunks interleave with other traffic; in
    /// manual-drive mode it pumps on the calling thread until its own
    /// chunks (and whatever decode work shares their batches) have
    /// executed. A prompt of at most [`ServerConfig::prefill_chunk`]
    /// tokens runs as a single chunk and is bit-identical to an unchunked
    /// forward.
    pub fn prefill(&self, id: SessionId, x: &[f32], tokens: usize) -> Result<Vec<f32>, ServeError> {
        let rx = self.submit_prefill(id, x, tokens)?;
        loop {
            match rx.try_recv() {
                Ok(res) => return res,
                Err(mpsc::TryRecvError::Disconnected) => return Err(ServeError::ShuttingDown),
                Err(mpsc::TryRecvError::Empty) => {
                    if self.inner.running.load(Ordering::Acquire) {
                        // A background batcher owns execution; just wait.
                        return match rx.recv() {
                            Ok(res) => res,
                            Err(_) => Err(ServeError::ShuttingDown),
                        };
                    }
                    if self.pump() == 0 {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// Submits one decode step without blocking; the result arrives on the
    /// returned channel once a batch containing it executes.
    pub fn submit_step(
        &self,
        id: SessionId,
        x: &[f32],
    ) -> Result<mpsc::Receiver<StepResult>, ServeError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let hidden = self.inner.model.config().hidden;
        if x.len() != hidden {
            return Err(ServeError::BadInput { expected: hidden, got: x.len() });
        }
        let (tenant, tickets) = self.admit(id, 0)?;
        let (tx, rx) = mpsc::channel();
        // Draw the program-order ticket: batch checkout executes this
        // session's steps strictly in ticket order, so concurrent pumps
        // cannot reorder a pipelined stream.
        let seq = tickets.fetch_add(1, Ordering::AcqRel);
        let req = StepRequest {
            session: id,
            tenant,
            seq,
            x: x.to_vec(),
            enqueued: Instant::now(),
            reply: tx,
        };
        self.publish(&tickets, WorkItem::Decode(req))?;
        self.inner.stats.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(rx)
    }

    /// Drains the submission rings and the deferred side-queue, replying
    /// `ShuttingDown` to every queued item (a prefill job's completion
    /// channel receives the bounce of whichever chunk was pending).
    fn bounce_pending(&self) {
        loop {
            let left = self.inner.batcher.collect(usize::MAX);
            if left.is_empty() {
                break;
            }
            for item in left {
                self.inner.deliver(item.reply(), Err(ServeError::ShuttingDown));
            }
        }
    }

    /// Blocking decode step: submit, then wait for the batcher. Requires
    /// [`Server::start`] (or a concurrent [`Server::pump`] driver).
    pub fn step(&self, id: SessionId, x: &[f32]) -> Result<Vec<f32>, ServeError> {
        let rx = self.submit_step(id, x)?;
        match rx.recv() {
            Ok(res) => res,
            Err(_) => Err(ServeError::ShuttingDown),
        }
    }

    /// Collects and executes one batch on the calling thread. Returns the
    /// executed batch size (0 when nothing was pending). This is the same
    /// code path the background batcher runs; it is safe to call from
    /// several threads concurrently (work for a session another pump holds
    /// checked out is deferred, not lost or double-executed).
    pub fn pump(&self) -> usize {
        let inner = &self.inner;
        let mut batch = inner.batcher.collect(inner.cfg.max_batch);
        if batch.is_empty() {
            return 0;
        }
        // Linger briefly for stragglers so bursts coalesce into one
        // region even when submitters race the batcher. The span starts
        // only after a nonempty first collect, so idle polling records
        // nothing.
        let collect_span = pl_trace::span("batch.collect", [batch.len() as u64, 0, 0]);
        if batch.len() < inner.cfg.max_batch && !inner.cfg.coalesce_wait.is_zero() {
            let deadline = Instant::now() + inner.cfg.coalesce_wait;
            while batch.len() < inner.cfg.max_batch && Instant::now() < deadline {
                let more = inner.batcher.collect(inner.cfg.max_batch - batch.len());
                if more.is_empty() {
                    std::thread::yield_now();
                } else {
                    batch.extend(more);
                }
            }
        }
        drop(collect_span);
        self.run_batch(batch)
    }

    /// Executes `batch` in one parallel region and delivers replies. At
    /// most one prefill chunk rides per batch, next to the decode lanes;
    /// surplus chunks, duplicate-session items and items whose session is
    /// checked out by a concurrent batch are deferred (FIFO, ahead of the
    /// rings) to the next batch in program order.
    fn run_batch(&self, batch: Vec<WorkItem>) -> usize {
        let inner = &self.inner;
        // The collect boundary for the queue-wait/execute latency split:
        // submit→here is queue wait, here→reply is execute.
        let collected = Instant::now();
        // Phase 1 — checkout: pull the target sessions out of the table so
        // the region holds no lock while computing, leaving CheckedOut
        // markers behind (see the module docs).
        let checkout_span = pl_trace::span("batch.checkout", [batch.len() as u64, 0, 0]);
        let mut ready: Vec<ReadyItem> = Vec::with_capacity(batch.len());
        let mut has_chunk = false;
        {
            let mut sessions = inner.sessions.lock();
            for item in batch {
                let sid = item.session();
                let second_chunk = has_chunk && matches!(item, WorkItem::PrefillChunk(_));
                if second_chunk || ready.iter().any(|r| r.session_id() == sid) {
                    inner.batcher.defer(item);
                    continue;
                }
                match sessions.get_mut(&sid) {
                    None => inner.deliver(item.reply(), Err(ServeError::UnknownSession(sid))),
                    Some(Slot::CheckedOut { .. }) => {
                        // A concurrent pump's batch holds this session;
                        // replay the item next batch, in program order.
                        inner.batcher.defer(item);
                    }
                    Some(slot) => {
                        let Slot::Live(sess) = &mut *slot else { unreachable!() };
                        // Program-order guard: a concurrent pump may have
                        // collected a *later* pipelined item of this
                        // session and reached checkout first — and a
                        // decode step queued behind a multi-chunk prefill
                        // replays through the side-queue ahead of the
                        // prefill's continuation chunks. Only the item
                        // holding the session's next ticket runs (every
                        // chunk of a prefill job carries the job's one
                        // ticket); later tickets are deferred.
                        let item_seq = match &item {
                            WorkItem::Decode(req) => req.seq,
                            WorkItem::PrefillChunk(c) => c.job.seq(),
                        };
                        if item_seq > sess.exec_seq {
                            inner.batcher.defer(item);
                            continue;
                        }
                        if item_seq < sess.exec_seq {
                            // A ticket behind the cursor can only be a
                            // duplicate: every legitimate ticket advances
                            // `exec_seq` exactly once when it executes or
                            // errors. Duplicates arise when the one-
                            // submitter-per-session protocol is violated
                            // (a backpressure rollback raced another
                            // submit's draw). Deferring would replay it
                            // forever — a silent livelock where the caller
                            // hangs and `in_flight` never drains; reject
                            // it loudly instead.
                            inner.deliver(
                                item.reply(),
                                Err(ServeError::StaleTicket { session: sid }),
                            );
                            continue;
                        }
                        // Capacity: a decode step needs one token; a
                        // prefill chunk is validated against the job's
                        // **whole remaining prompt**, so an oversized
                        // prefill (admitted while the session was checked
                        // out and unverifiable) fails atomically at its
                        // first chunk instead of leaving a partial prompt
                        // in the KV cache.
                        let need = match &item {
                            WorkItem::Decode(_) => 1,
                            WorkItem::PrefillChunk(c) => c.job.remaining_tokens(c.chunk),
                        };
                        if !sess.fits(need) {
                            let err = ServeError::KvExhausted {
                                context: sess.context_len(),
                                capacity: inner.cfg.kv_capacity,
                            };
                            // The errored step — or aborted prefill job —
                            // consumed its ticket; advance the cursor so
                            // later pipelined items are not deferred
                            // forever.
                            sess.exec_seq += 1;
                            inner.deliver(item.reply(), Err(err));
                            continue;
                        }
                        let marker = Slot::CheckedOut {
                            tenant: sess.tenant,
                            submit_seq: Arc::clone(&sess.submit_seq),
                            closer: None,
                        };
                        let Slot::Live(sess) = std::mem::replace(slot, marker) else {
                            unreachable!()
                        };
                        ready.push(match item {
                            WorkItem::Decode(req) => ReadyItem::Decode(req, sess),
                            WorkItem::PrefillChunk(c) => {
                                has_chunk = true;
                                ReadyItem::Chunk(c, sess)
                            }
                        });
                    }
                }
            }
        }
        drop(checkout_span);
        if ready.is_empty() {
            return 0;
        }
        let size = ready.len();
        let decode_lanes = size - usize::from(has_chunk);

        // Phase 2 — execute, no lock held. The fused-vs-serial decision
        // comes from the installed measured policy when one exists (the
        // retune loop's per-batch-width table), else the static config
        // flag — so a server that never retunes behaves exactly as
        // before.
        let fused = inner
            .mode_policy
            .read()
            .as_ref()
            .and_then(|t| t.fused_for(decode_lanes.max(1)))
            .unwrap_or(inner.cfg.fused);
        let execute_span =
            pl_trace::span("batch.execute", [size as u64, decode_lanes as u64, u64::from(fused)]);
        let outputs: Vec<Vec<f32>> = if fused {
            // Fused decode lanes share one `hidden x B` GEMM per layer
            // projection; the prefill chunk (if any) runs as its own
            // forward in the same pump iteration.
            let mut decode_idx = Vec::with_capacity(decode_lanes);
            let mut decode_items: Vec<(&mut DecoderState, &[f32])> =
                Vec::with_capacity(decode_lanes);
            let mut chunk_idx = None;
            for (i, r) in ready.iter_mut().enumerate() {
                match r {
                    ReadyItem::Decode(req, sess) => {
                        decode_idx.push(i);
                        decode_items.push((&mut sess.state, req.x.as_slice()));
                    }
                    ReadyItem::Chunk(..) => chunk_idx = Some(i),
                }
            }
            let mut outputs = vec![Vec::new(); size];
            if !decode_items.is_empty() {
                let decode_out = inner.model.step_batch_fused(decode_items, &inner.pool);
                let cfg = inner.model.config();
                let (h, f, l) = (cfg.hidden, cfg.ffn, cfg.layers as u64);
                // Per layer: 4 h x h GEMMs (QKV + output) and one of each
                // FFN shape — the actual GEMM executions this batch fused.
                inner.stats.record_fused_batch(&[
                    ((h, decode_lanes, h), 4 * l),
                    ((f, decode_lanes, h), l),
                    ((h, decode_lanes, f), l),
                ]);
                for (i, y) in decode_idx.into_iter().zip(decode_out) {
                    outputs[i] = y;
                }
            }
            if let Some(i) = chunk_idx {
                let ReadyItem::Chunk(c, sess) = &mut ready[i] else { unreachable!() };
                let _chunk_span = pl_trace::span(
                    "prefill.chunk",
                    [c.chunk as u64, c.job.chunk_tokens(c.chunk) as u64, 1],
                );
                outputs[i] = inner.model.forward(
                    &mut sess.state,
                    c.job.chunk_input(c.chunk),
                    c.job.chunk_tokens(c.chunk),
                    &inner.pool,
                );
            }
            outputs
        } else {
            // Serial: one mixed region over decode lanes + the chunk; each
            // item's forward is bit-identical to running it alone.
            let items: Vec<(&mut DecoderState, &[f32], usize)> = ready
                .iter_mut()
                .map(|r| match r {
                    ReadyItem::Decode(req, sess) => (&mut sess.state, req.x.as_slice(), 1),
                    ReadyItem::Chunk(c, sess) => {
                        (&mut sess.state, c.job.chunk_input(c.chunk), c.job.chunk_tokens(c.chunk))
                    }
                })
                .collect();
            inner.model.forward_batch(items, &inner.pool)
        };
        drop(execute_span);

        // Phase 3 — check-in and delivery.
        let _deliver_span = pl_trace::span("batch.deliver", [size as u64, 0, 0]);
        inner.stats.batches.fetch_add(1, Ordering::Relaxed);
        inner.batches_total.inc();
        inner.stats.batch_sizes.record(size);
        if decode_lanes > 0 {
            inner.stats.decode_batches.fetch_add(1, Ordering::Relaxed);
        }
        if has_chunk && decode_lanes > 0 {
            inner.stats.mixed_batches.fetch_add(1, Ordering::Relaxed);
        }
        let mut sessions = inner.sessions.lock();
        for (r, y) in ready.into_iter().zip(outputs) {
            match r {
                ReadyItem::Decode(req, mut sess) => {
                    sess.generated += 1;
                    sess.last_active = collected;
                    // The step's ticket is spent: advance the
                    // program-order cursor so the session's next
                    // pipelined step becomes executable.
                    sess.exec_seq += 1;
                    inner.check_in(&mut sessions, req.session, sess);
                    // Combined latency plus its split at the collect
                    // boundary: ring wait vs batch compute.
                    let us = req.enqueued.elapsed().as_micros() as u64;
                    let queue_wait = collected.saturating_duration_since(req.enqueued);
                    let execute_us = collected.elapsed().as_micros() as u64;
                    inner.stats.step_latency.record_us(us);
                    inner.stats.queue_wait_latency.record_us(queue_wait.as_micros() as u64);
                    inner.stats.execute_latency.record_us(execute_us);
                    // Per-tenant accounting + SLO tracking (pre-created
                    // handles: atomics and one short mutex, no registry
                    // lock).
                    if let Some(tm) = inner.tenant_metrics.get(req.tenant) {
                        tm.steps.inc();
                        tm.queue_wait.observe(queue_wait.as_micros() as u64);
                        tm.execute.observe(execute_us);
                        tm.slo.record(us);
                    }
                    inner.slo.record(us);
                    if pl_trace::enabled() {
                        // The per-item submit→collect span, placed on the
                        // trace timebase so it lines up under this batch's
                        // checkout/execute spans.
                        let q_ns = queue_wait.as_nanos() as u64;
                        let since_collect = collected.elapsed().as_nanos() as u64;
                        let start = pl_trace::now_ns().saturating_sub(since_collect + q_ns);
                        pl_trace::complete("step.queue_wait", start, q_ns, [req.session, 0, 0]);
                    }
                    inner.stats.completed.fetch_add(1, Ordering::Relaxed);
                    inner.deliver(&req.reply, Ok(y));
                }
                ReadyItem::Chunk(c, mut sess) => {
                    inner.stats.prefill_chunks.fetch_add(1, Ordering::Relaxed);
                    inner
                        .stats
                        .prefill_chunk_latency
                        .record_us(c.enqueued.elapsed().as_micros() as u64);
                    if let Some(tm) = inner.tenant_metrics.get(c.job.tenant()) {
                        tm.prefill_chunks.inc();
                    }
                    if pl_trace::enabled() {
                        let q_ns =
                            collected.saturating_duration_since(c.enqueued).as_nanos() as u64;
                        let since_collect = collected.elapsed().as_nanos() as u64;
                        let start = pl_trace::now_ns().saturating_sub(since_collect + q_ns);
                        pl_trace::complete(
                            "chunk.queue_wait",
                            start,
                            q_ns,
                            [c.job.session(), c.chunk as u64, 0],
                        );
                    }
                    c.job.push_output(y);
                    sess.last_active = collected;
                    if c.chunk + 1 == c.job.chunks() {
                        // The job's single ticket is spent only when its
                        // final chunk lands: items pipelined behind the
                        // prefill become executable now, never between
                        // chunks.
                        sess.exec_seq += 1;
                        // Completed prompt: hash-cons it into the shard's
                        // prefix cache. A later session prefilling the
                        // same prompt (or one sharing a page-aligned
                        // prefix of it) adopts these pages instead of
                        // holding its own copy; divergence after the
                        // shared run is isolated by COW splits, so
                        // outputs never change.
                        if inner.cfg.share_prefix {
                            sess.state.share_prefix(&inner.prefix, c.job.prompt(), c.job.tokens());
                        }
                    }
                    inner.check_in(&mut sessions, c.job.session(), sess);
                    let next = c.chunk + 1;
                    if next < c.job.chunks() {
                        // The completed chunk's in-flight unit transfers
                        // to the successor: nothing is delivered for a
                        // non-final chunk, so the counter stays raised
                        // across the hand-off and a drain polling
                        // `in_flight` never sees a mid-prefill gap.
                        inner.batcher.defer(WorkItem::PrefillChunk(ChunkItem {
                            job: Arc::clone(&c.job),
                            chunk: next,
                            enqueued: Instant::now(),
                        }));
                    } else {
                        inner.stats.prefills.fetch_add(1, Ordering::Relaxed);
                        inner.deliver(c.job.reply(), Ok(c.job.take_output()));
                    }
                }
            }
        }
        size
    }

    /// Spawns the background batcher thread. Idempotent.
    pub fn start(&mut self) {
        if self.batcher_thread.is_some() {
            return;
        }
        self.inner.running.store(true, Ordering::Release);
        let inner = Arc::clone(&self.inner);
        let server = Server { inner, batcher_thread: None };
        self.batcher_thread = Some(
            std::thread::Builder::new()
                .name("pl-serve-batcher".into())
                .spawn(move || loop {
                    let ran = server.pump();
                    if ran == 0 {
                        if server.inner.shutdown.load(Ordering::Acquire)
                            && server.inner.batcher.pending() == 0
                        {
                            break;
                        }
                        // `pump` returns the *executed* count: a batch
                        // whose items were all deferred (out-of-order
                        // ticket at the side-queue head, session checked
                        // out by a concurrent pump) executes nothing yet
                        // work is still pending and becomes runnable as
                        // soon as the blocking item checks in — yield and
                        // re-collect instead of sleeping a full idle_poll.
                        if server.inner.batcher.pending() > 0 {
                            std::thread::yield_now();
                        } else {
                            std::thread::sleep(server.inner.cfg.idle_poll);
                        }
                    }
                })
                .expect("failed to spawn batcher thread"),
        );
    }

    /// Stops admitting work, drains the queues, and joins the batcher.
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.batcher_thread.take() {
            let _ = h.join();
        }
        self.inner.running.store(false, Ordering::Release);
        // Without a batcher thread, bounce whatever is still queued.
        self.bounce_pending();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.batcher_thread.is_some() {
            self.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_dnn::DecoderConfig;
    use pl_tensor::{fill_uniform, Xorshift};

    fn tiny_server(cfg: ServerConfig) -> Server {
        let model = Arc::new(DecoderModel::new(DecoderConfig::scaled_for_tests(), 77));
        let pool = Arc::new(ThreadPool::new(4));
        Server::new(model, pool, cfg)
    }

    fn token(seed: u64, hidden: usize) -> Vec<f32> {
        let mut x = vec![0.0f32; hidden];
        fill_uniform(&mut x, &mut Xorshift::new(seed), -0.5, 0.5);
        x
    }

    #[test]
    fn session_lifecycle_and_caps() {
        let server = tiny_server(ServerConfig { max_sessions: 2, ..Default::default() });
        let a = server.create_session(0).unwrap();
        let b = server.create_session(0).unwrap();
        assert_ne!(a, b);
        assert!(matches!(server.create_session(0), Err(ServeError::TooManySessions { limit: 2 })));
        assert_eq!(server.stats().rejected_sessions.load(Ordering::Relaxed), 1);
        assert_eq!(server.close_session(a).unwrap(), 0);
        // Freed capacity is reusable.
        let c = server.create_session(0).unwrap();
        assert!(matches!(server.close_session(a), Err(ServeError::UnknownSession(_))));
        assert!(matches!(server.create_session(9), Err(ServeError::UnknownTenant(9))));
        let _ = (b, c);
    }

    #[test]
    fn pump_executes_submitted_steps_and_matches_unbatched() {
        let server =
            tiny_server(ServerConfig { coalesce_wait: Duration::ZERO, ..Default::default() });
        let hidden = server.model().config().hidden;
        let n = 4;
        let ids: Vec<SessionId> = (0..n).map(|_| server.create_session(0).unwrap()).collect();
        let xs: Vec<Vec<f32>> = (0..n).map(|s| token(500 + s as u64, hidden)).collect();
        let rxs: Vec<_> =
            ids.iter().zip(&xs).map(|(&id, x)| server.submit_step(id, x).unwrap()).collect();
        assert_eq!(server.pump(), n);
        // Baseline: independent unbatched decoders over the same weights.
        for ((rx, x), _id) in rxs.into_iter().zip(&xs).zip(&ids) {
            let got = rx.recv().unwrap().unwrap();
            let mut st = server.model().new_state(8);
            let want = server.model().forward(&mut st, x, 1, &ThreadPool::new(2));
            assert_eq!(got, want, "batched step must be bit-identical");
        }
        let snap = server.stats().snapshot();
        assert_eq!(snap.completed, n as u64);
        assert_eq!(snap.max_batch_observed, n);
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.decode_batches, 1);
    }

    #[test]
    fn int8_server_serves_within_tolerance_of_f32() {
        // Same seed: the int8 model is the quantization of the f32 one.
        // Serve a prefill + decode steps at both precisions; the int8
        // outputs must track the f32 ones within the quantization budget
        // (bound derivation in crates/serve/README.md, "Precision"), and
        // the serial int8 path must stay bit-identical to an unbatched
        // forward over the same int8 model.
        let f32_server =
            tiny_server(ServerConfig { coalesce_wait: Duration::ZERO, ..Default::default() });
        let i8_model = Arc::new(DecoderModel::new_with_precision(
            DecoderConfig::scaled_for_tests(),
            77,
            Precision::Int8,
        ));
        let i8_server = Server::new(
            Arc::clone(&i8_model),
            Arc::new(ThreadPool::new(4)),
            ServerConfig {
                coalesce_wait: Duration::ZERO,
                precision: Precision::Int8,
                ..Default::default()
            },
        );
        let hidden = i8_model.config().hidden;
        let fid = f32_server.create_session(0).unwrap();
        let qid = i8_server.create_session(0).unwrap();
        let prompt = token(55, hidden * 3);
        let yf = f32_server.prefill(fid, &prompt, 3).unwrap();
        let yq = i8_server.prefill(qid, &prompt, 3).unwrap();
        for (i, (a, b)) in yq.iter().zip(&yf).enumerate() {
            let rel = (a - b).abs() / b.abs().max(1.0);
            assert!(rel < 0.25, "prefill idx {i}: i8 {a} vs f32 {b}");
        }
        let x = token(56, hidden);
        let rxf = f32_server.submit_step(fid, &x).unwrap();
        let rxq = i8_server.submit_step(qid, &x).unwrap();
        assert_eq!(f32_server.pump(), 1);
        assert_eq!(i8_server.pump(), 1);
        let sf = rxf.recv().unwrap().unwrap();
        let sq = rxq.recv().unwrap().unwrap();
        for (i, (a, b)) in sq.iter().zip(&sf).enumerate() {
            let rel = (a - b).abs() / b.abs().max(1.0);
            assert!(rel < 0.25, "step idx {i}: i8 {a} vs f32 {b}");
        }
        // Serial int8 serving is bit-identical to unbatched int8 decode.
        let mut st = i8_model.new_state(8);
        let pool = ThreadPool::new(2);
        let _ = i8_model.forward(&mut st, &prompt, 3, &pool);
        let want = i8_model.forward(&mut st, &x, 1, &pool);
        assert_eq!(sq, want, "serial int8 serving must be bit-identical to unbatched");
    }

    #[test]
    fn precision_mismatch_fails_at_construction() {
        let model = Arc::new(DecoderModel::new(DecoderConfig::scaled_for_tests(), 77));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Server::new(
                model,
                Arc::new(ThreadPool::new(1)),
                ServerConfig { precision: Precision::Int8, ..Default::default() },
            )
        }));
        assert!(result.is_err(), "f32 model + int8 config must panic at startup");
    }

    #[test]
    fn prefill_then_step_continues_the_stream() {
        let server = tiny_server(ServerConfig::default());
        let hidden = server.model().config().hidden;
        let id = server.create_session(0).unwrap();
        let prompt = token(1, hidden * 3);
        let y = server.prefill(id, &prompt, 3).unwrap();
        assert_eq!(y.len(), hidden * 3);
        let rx = server.submit_step(id, &token(2, hidden)).unwrap();
        assert_eq!(server.pump(), 1);
        let stepped = rx.recv().unwrap().unwrap();
        // Baseline continues from the same 3-token context.
        let mut st = server.model().new_state(server.model().config().hidden * 4);
        let pool = ThreadPool::new(2);
        let _ = server.model().forward(&mut st, &prompt, 3, &pool);
        let want = server.model().forward(&mut st, &token(2, hidden), 1, &pool);
        assert_eq!(stepped, want);
    }

    #[test]
    fn single_chunk_prefill_is_bit_identical_to_unchunked_forward() {
        // The chunked admission path must not change single-chunk prompts:
        // a prompt of <= prefill_chunk tokens executes as exactly one
        // forward, bitwise equal to the pre-chunking inline prefill.
        let server = tiny_server(ServerConfig { prefill_chunk: 16, ..Default::default() });
        let hidden = server.model().config().hidden;
        let id = server.create_session(0).unwrap();
        let prompt = token(77, hidden * 5);
        let y = server.prefill(id, &prompt, 5).unwrap();
        let mut st = server.model().new_state(16);
        let want = server.model().forward(&mut st, &prompt, 5, &ThreadPool::new(2));
        assert_eq!(y, want, "single-chunk prefill must be bit-identical");
        let snap = server.stats().snapshot();
        assert_eq!(snap.prefills, 1);
        assert_eq!(snap.prefill_chunks, 1);
    }

    #[test]
    fn multi_chunk_prefill_matches_whole_prompt_within_tolerance() {
        let server =
            tiny_server(ServerConfig { prefill_chunk: 4, kv_capacity: 32, ..Default::default() });
        let hidden = server.model().config().hidden;
        let id = server.create_session(0).unwrap();
        let tokens = 11; // chunks of 4, 4, 3
        let prompt = token(78, hidden * tokens);
        let y = server.prefill(id, &prompt, tokens).unwrap();
        assert_eq!(y.len(), hidden * tokens);
        assert_eq!(server.stats().prefill_chunks.load(Ordering::Relaxed), 3);
        // Chunk-by-chunk baseline is bitwise (same forwards, same widths)…
        let pool = ThreadPool::new(2);
        let mut st = server.model().new_state(32);
        let chunked = server.model().forward_chunked(&mut st, &prompt, tokens, 4, &pool);
        assert_eq!(y, chunked, "served chunks must equal a chunked forward bitwise");
        // …and the whole-prompt forward agrees within tolerance.
        let mut st = server.model().new_state(32);
        let whole = server.model().forward(&mut st, &prompt, tokens, &pool);
        let err = pl_tensor::max_rel_err(&y, &whole);
        assert!(err <= 1e-5, "rel err {err}");
    }

    #[test]
    fn stale_ticket_is_rejected_not_deferred_forever() {
        // A ticket behind the session's exec_seq cursor can only exist if
        // the one-submitter-per-session protocol was violated: a
        // backpressure rollback raced a concurrent same-session submit
        // and the dispenser re-issued a published ticket. Checkout used
        // to re-defer such an item on every batch — a silent livelock
        // (the caller hangs on recv, in_flight never drains, drains and
        // shutdown never quiesce). It must fail loudly instead.
        let server =
            tiny_server(ServerConfig { coalesce_wait: Duration::ZERO, ..Default::default() });
        let hidden = server.model().config().hidden;
        let id = server.create_session(0).unwrap();
        let rx1 = server.submit_step(id, &token(91, hidden)).unwrap();
        assert_eq!(server.pump(), 1);
        // Ticket 0 is spent and exec_seq is now 1. Forge the duplicate: a
        // second item carrying the spent ticket 0, published exactly as
        // submit_step would have.
        rx1.recv().unwrap().unwrap();
        let (tx, rx) = mpsc::channel();
        server.inner.in_flight.fetch_add(1, Ordering::AcqRel);
        server
            .inner
            .batcher
            .submit(WorkItem::Decode(StepRequest {
                session: id,
                tenant: 0,
                seq: 0,
                x: token(92, hidden),
                enqueued: Instant::now(),
                reply: tx,
            }))
            .unwrap_or_else(|_| panic!("ring full"));
        server.pump();
        match rx.try_recv() {
            Ok(Err(ServeError::StaleTicket { session })) => assert_eq!(session, id),
            other => panic!("stale ticket must be rejected loudly, got {other:?}"),
        }
        assert_eq!(server.in_flight(), 0, "the rejected duplicate must retire its count");
        assert_eq!(server.inner.batcher.pending(), 0, "nothing may stay parked in the queues");
        // The session itself is unharmed: a fresh step still executes.
        let rx2 = server.submit_step(id, &token(93, hidden)).unwrap();
        assert_eq!(server.pump(), 1);
        rx2.recv().unwrap().unwrap();
    }

    #[test]
    fn decode_is_not_starved_by_concurrent_multi_chunk_prefills() {
        // Regression: with `max_batch` (or more) concurrent prefill jobs,
        // the side-queue held that many chunks, every collect filled the
        // whole batch from it (one chunk executing, the rest re-deferred),
        // and a ring-queued decode step waited for ALL remaining prefill
        // work — cross-session head-of-line blocking. The one-chunk-per-
        // collect cap leaves the other lanes for decode.
        let server = tiny_server(ServerConfig {
            max_batch: 2,
            prefill_chunk: 4,
            kv_capacity: 32,
            coalesce_wait: Duration::ZERO,
            ..Default::default()
        });
        let hidden = server.model().config().hidden;
        let a = server.create_session(0).unwrap();
        let b = server.create_session(0).unwrap();
        let c = server.create_session(0).unwrap();
        let tokens = 16; // 4 chunks of 4 under prefill_chunk = 4
        let rx_a = server.submit_prefill(a, &token(41, hidden * tokens), tokens).unwrap();
        let rx_b = server.submit_prefill(b, &token(42, hidden * tokens), tokens).unwrap();
        let rx_c = server.submit_step(c, &token(43, hidden)).unwrap();
        // Pump until the decode step completes; both prefills (8 chunks
        // total) must still be in flight at that point.
        let mut pumps = 0;
        loop {
            assert!(pumps < 16, "decode step starved behind concurrent prefills");
            server.pump();
            pumps += 1;
            match rx_c.try_recv() {
                Ok(res) => {
                    res.unwrap();
                    break;
                }
                Err(mpsc::TryRecvError::Empty) => {}
                Err(e) => panic!("decode reply channel died: {e:?}"),
            }
        }
        assert!(
            matches!(rx_a.try_recv(), Err(mpsc::TryRecvError::Empty)),
            "decode must complete before prefill A finishes"
        );
        assert!(
            matches!(rx_b.try_recv(), Err(mpsc::TryRecvError::Empty)),
            "decode must complete before prefill B finishes"
        );
        // Both prefills still run to completion afterwards.
        let (mut done_a, mut done_b) = (false, false);
        for _ in 0..32 {
            server.pump();
            if let Ok(r) = rx_a.try_recv() {
                r.unwrap();
                done_a = true;
            }
            if let Ok(r) = rx_b.try_recv() {
                r.unwrap();
                done_b = true;
            }
            if done_a && done_b {
                break;
            }
        }
        assert!(done_a && done_b, "prefills must complete after the decode interleave");
        assert_eq!(server.in_flight(), 0);
        assert_eq!(server.stats().prefill_chunks.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn pipelined_steps_on_one_session_defer_not_error() {
        // Two queued steps for the same session must both complete (the
        // second rides the next batch), not error with UnknownSession.
        let server =
            tiny_server(ServerConfig { coalesce_wait: Duration::ZERO, ..Default::default() });
        let hidden = server.model().config().hidden;
        let id = server.create_session(0).unwrap();
        let x1 = token(21, hidden);
        let rx1 = server.submit_step(id, &x1).unwrap();
        let rx2 = server.submit_step(id, &token(22, hidden)).unwrap();
        assert_eq!(server.pump(), 1, "first batch runs only the first step");
        let y1 = rx1.recv().unwrap().unwrap();
        assert_eq!(server.pump(), 1, "deferred step rides the next batch");
        let y2 = rx2.recv().unwrap().unwrap();
        assert_ne!(y1, y2);
        // Both steps landed in the KV cache, in order.
        let mut st = server.model().new_state(8);
        let pool = ThreadPool::new(2);
        let w1 = server.model().forward(&mut st, &x1, 1, &pool);
        let w2 = server.model().forward(&mut st, &token(22, hidden), 1, &pool);
        assert_eq!(y1, w1);
        assert_eq!(y2, w2);
    }

    #[test]
    fn deferred_steps_execute_in_submission_order_ahead_of_ring_queued_ones() {
        // Satellite regression: three pipelined steps of one session,
        // batch window of two. The old code re-submitted the deferred
        // step 2 to the *back* of the ring — behind step 3 — so step 3
        // executed first and corrupted the KV stream. The FIFO side-queue
        // replays step 2 ahead of the ring.
        let server = tiny_server(ServerConfig {
            max_batch: 2,
            coalesce_wait: Duration::ZERO,
            ..Default::default()
        });
        let hidden = server.model().config().hidden;
        let id = server.create_session(0).unwrap();
        let xs: Vec<Vec<f32>> = (0..3).map(|t| token(50 + t as u64, hidden)).collect();
        let rxs: Vec<_> = xs.iter().map(|x| server.submit_step(id, x).unwrap()).collect();
        // Batch 1 collects steps 1+2, executes 1, defers 2 (step 3 still
        // ring-queued). Batch 2 must run step 2, NOT step 3.
        assert_eq!(server.pump(), 1);
        assert_eq!(server.pump(), 1);
        assert_eq!(server.pump(), 1);
        let got: Vec<Vec<f32>> = rxs.into_iter().map(|rx| rx.recv().unwrap().unwrap()).collect();
        // Delivery order == submission order == KV order: the outputs
        // must match a sequential 3-step baseline bitwise.
        let mut st = server.model().new_state(8);
        let pool = ThreadPool::new(2);
        for (t, (x, y)) in xs.iter().zip(&got).enumerate() {
            let want = server.model().forward(&mut st, x, 1, &pool);
            assert_eq!(y, &want, "step {t} executed out of order");
        }
        assert_eq!(st.cached_tokens(), 3);
        assert_eq!(server.close_session(id).unwrap(), 3, "all three steps landed in KV order");
    }

    #[test]
    fn concurrent_pumps_preserve_same_session_program_order() {
        // Review regression: two pumps could each collect one of a
        // session's pipelined steps, and whichever reached checkout first
        // executed — even if it held the *later* step — corrupting the KV
        // stream. The per-session ticket (`StepRequest::seq` vs
        // `Session::exec_seq`) defers out-of-order steps, so the stream
        // must stay bitwise-sequential under two concurrent pumpers.
        let server = Arc::new(tiny_server(ServerConfig {
            // One item per batch maximizes pump interleavings.
            max_batch: 1,
            coalesce_wait: Duration::ZERO,
            queue_capacity: 256,
            kv_capacity: 256,
            ..Default::default()
        }));
        let hidden = server.model().config().hidden;
        let id = server.create_session(0).unwrap();
        const STEPS: usize = 200;
        let xs: Vec<Vec<f32>> = (0..STEPS).map(|t| token(8000 + t as u64, hidden)).collect();
        let rxs: Vec<_> = xs.iter().map(|x| server.submit_step(id, x).unwrap()).collect();
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let server = Arc::clone(&server);
                let barrier = &barrier;
                scope.spawn(move || {
                    // Both pumpers start together so they actually contend.
                    barrier.wait();
                    while server.in_flight() > 0 {
                        if server.pump() == 0 {
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        let got: Vec<Vec<f32>> = rxs.into_iter().map(|rx| rx.recv().unwrap().unwrap()).collect();
        let mut st = server.model().new_state(STEPS + 1);
        let pool = ThreadPool::new(2);
        for (t, (x, y)) in xs.iter().zip(&got).enumerate() {
            let want = server.model().forward(&mut st, x, 1, &pool);
            assert_eq!(y, &want, "step {t} executed out of program order");
        }
        assert_eq!(server.close_session(id).unwrap(), STEPS as u64);
    }

    #[test]
    fn out_of_order_checkout_is_deferred_not_executed() {
        // Deterministic white-box form of the concurrent-pump race: pump A
        // collects step N, pump B collects step N+1, and B reaches
        // checkout FIRST. Simulated by collecting both items by hand and
        // running B's batch before A's: the program-order guard must
        // defer step N+1 (not execute it against a KV cache missing step
        // N), then execute it after step N in a later pump.
        let server =
            tiny_server(ServerConfig { coalesce_wait: Duration::ZERO, ..Default::default() });
        let hidden = server.model().config().hidden;
        let id = server.create_session(0).unwrap();
        let xs: Vec<Vec<f32>> = (0..2).map(|t| token(70 + t as u64, hidden)).collect();
        let rx0 = server.submit_step(id, &xs[0]).unwrap();
        let rx1 = server.submit_step(id, &xs[1]).unwrap();
        // Pump A's collect takes step 0; pump B's takes step 1.
        let step0 = server.inner.batcher.collect(1);
        let step1 = server.inner.batcher.collect(1);
        assert_eq!(step0.len(), 1);
        assert_eq!(step1.len(), 1);
        // B wins the checkout race with the LATER step: it must not run.
        assert_eq!(server.run_batch(step1), 0, "out-of-order step must be deferred");
        assert!(rx1.try_recv().is_err(), "no reply for the deferred step");
        // A's batch executes step 0; the deferred step 1 rides the next
        // pump from the side-queue.
        assert_eq!(server.run_batch(step0), 1);
        assert_eq!(server.pump(), 1);
        let y0 = rx0.recv().unwrap().unwrap();
        let y1 = rx1.recv().unwrap().unwrap();
        let mut st = server.model().new_state(8);
        let pool = ThreadPool::new(2);
        assert_eq!(y0, server.model().forward(&mut st, &xs[0], 1, &pool));
        assert_eq!(y1, server.model().forward(&mut st, &xs[1], 1, &pool), "KV order preserved");
        assert_eq!(server.close_session(id).unwrap(), 2);
    }

    #[test]
    fn decode_step_pipelined_behind_a_prefill_waits_for_every_chunk() {
        // Review regression: a decode step submitted after a multi-chunk
        // prefill replays through the side-queue *ahead of* the prefill's
        // continuation chunks (the same-session dedup defers the step
        // before phase 3 defers the next chunk). Without the job ticket it
        // executed between two chunks, splicing a decode token into the
        // middle of the prompt's KV — silently. The job-wide ticket
        // defers it until the final chunk has landed.
        let server = tiny_server(ServerConfig {
            prefill_chunk: 2,
            kv_capacity: 32,
            coalesce_wait: Duration::ZERO,
            ..Default::default()
        });
        let hidden = server.model().config().hidden;
        let id = server.create_session(0).unwrap();
        let tokens = 8; // 4 chunks of 2
        let prompt = token(96, hidden * tokens);
        let prefill_rx = server.submit_prefill(id, &prompt, tokens).unwrap();
        let x = token(97, hidden);
        let step_rx = server.submit_step(id, &x).unwrap();
        // Drive to completion; the step must resolve after the prefill.
        let mut prefill_out = None;
        let mut step_out = None;
        let mut pumps = 0;
        while prefill_out.is_none() || step_out.is_none() {
            server.pump();
            pumps += 1;
            assert!(pumps < 64, "no livelock");
            if let Ok(res) = prefill_rx.try_recv() {
                prefill_out = Some(res.unwrap());
            }
            if let Ok(res) = step_rx.try_recv() {
                assert!(
                    prefill_out.is_some(),
                    "step must not complete before the prefill it was pipelined behind"
                );
                step_out = Some(res.unwrap());
            }
        }
        // Outputs in program order: whole chunked prompt first, then the
        // step on top of the full 8-token context — bitwise.
        let pool = ThreadPool::new(2);
        let mut st = server.model().new_state(32);
        let chunked = server.model().forward_chunked(&mut st, &prompt, tokens, 2, &pool);
        let want_step = server.model().forward(&mut st, &x, 1, &pool);
        assert_eq!(prefill_out.unwrap(), chunked);
        assert_eq!(step_out.unwrap(), want_step, "step spliced into the prompt's KV");
        // The session's KV really holds prompt-then-step: one more step
        // continues bit-identically from the 9-token baseline context.
        let x2 = token(98, hidden);
        let rx2 = server.submit_step(id, &x2).unwrap();
        while server.pump() == 0 {}
        assert_eq!(rx2.recv().unwrap().unwrap(), server.model().forward(&mut st, &x2, 1, &pool));
        assert_eq!(server.close_session(id).unwrap(), 2);
    }

    #[test]
    fn oversized_prefill_fails_atomically_without_partial_kv_append() {
        // Review regression: a prefill admitted without an up-front
        // capacity check (the session can be checked out at submit, or —
        // as here — grow between admission and execution) must fail at
        // its FIRST chunk, before any tokens append, never leaving a
        // partial prompt in the KV cache.
        let server = tiny_server(ServerConfig {
            kv_capacity: 8,
            prefill_chunk: 2,
            coalesce_wait: Duration::ZERO,
            ..Default::default()
        });
        let hidden = server.model().config().hidden;
        let id = server.create_session(0).unwrap();
        // A decode step queued ahead of the prefill grows the context to 1
        // before any chunk runs, so the 8-token prompt (admitted at
        // context 0, where it fit exactly) no longer fits.
        let x0 = token(60, hidden);
        let step_rx = server.submit_step(id, &x0).unwrap();
        let prompt = token(61, hidden * 8);
        let prefill_rx = server.submit_prefill(id, &prompt, 8).unwrap();
        assert_eq!(server.pump(), 1, "the step runs first; the same-session chunk defers");
        let y0 = step_rx.recv().unwrap().unwrap();
        assert_eq!(server.pump(), 0, "chunk 0 is rejected at checkout, nothing executes");
        assert!(matches!(
            prefill_rx.recv().unwrap(),
            Err(ServeError::KvExhausted { context: 1, capacity: 8 })
        ));
        assert_eq!(server.in_flight(), 0);
        // No partial prompt landed: the next step continues bit-identically
        // from the 1-token context.
        let x1 = token(62, hidden);
        let rx = server.submit_step(id, &x1).unwrap();
        assert_eq!(server.pump(), 1);
        let y1 = rx.recv().unwrap().unwrap();
        let mut st = server.model().new_state(8);
        let pool = ThreadPool::new(2);
        assert_eq!(y0, server.model().forward(&mut st, &x0, 1, &pool));
        assert_eq!(y1, server.model().forward(&mut st, &x1, 1, &pool));
    }

    #[test]
    fn in_flight_tracks_accepted_steps_until_reply() {
        let server =
            tiny_server(ServerConfig { coalesce_wait: Duration::ZERO, ..Default::default() });
        let hidden = server.model().config().hidden;
        assert_eq!(server.in_flight(), 0);
        let id = server.create_session(0).unwrap();
        let rx1 = server.submit_step(id, &token(41, hidden)).unwrap();
        let rx2 = server.submit_step(id, &token(42, hidden)).unwrap();
        assert_eq!(server.in_flight(), 2);
        assert_eq!(server.pending(), 2);
        // One pump executes one step (same-session pipelining defers the
        // second): exactly one reply retired.
        assert_eq!(server.pump(), 1);
        assert_eq!(server.in_flight(), 1);
        assert_eq!(server.pump(), 1);
        assert_eq!(server.in_flight(), 0);
        assert_eq!(server.pending(), 0);
        rx1.recv().unwrap().unwrap();
        rx2.recv().unwrap().unwrap();
        // Error replies retire the count too (KV-exhausted session).
        let tiny = tiny_server(ServerConfig {
            kv_capacity: 0,
            coalesce_wait: Duration::ZERO,
            ..Default::default()
        });
        let id = tiny.create_session(0).unwrap();
        let rx = tiny.submit_step(id, &token(43, tiny.model().config().hidden)).unwrap();
        assert_eq!(tiny.in_flight(), 1);
        tiny.pump();
        assert_eq!(tiny.in_flight(), 0);
        assert!(matches!(rx.recv().unwrap(), Err(ServeError::KvExhausted { .. })));
    }

    #[test]
    fn in_flight_covers_every_prefill_chunk_without_gaps() {
        // Satellite regression: prefill work used to be invisible to
        // in_flight (and unchecked against shutdown), so drains could
        // report a shard quiesced mid-prefill. Now every chunk counts,
        // including across chunk hand-offs.
        let server = tiny_server(ServerConfig {
            prefill_chunk: 2,
            kv_capacity: 16,
            coalesce_wait: Duration::ZERO,
            ..Default::default()
        });
        let hidden = server.model().config().hidden;
        let id = server.create_session(0).unwrap();
        let tokens = 7; // chunks of 2, 2, 2, 1
        let rx = server.submit_prefill(id, &token(90, hidden * tokens), tokens).unwrap();
        assert_eq!(server.in_flight(), 1, "prefill visible before any pump");
        // Every intermediate chunk leaves the successor in flight.
        for chunk in 0..4 {
            assert_eq!(server.in_flight(), 1, "no mid-prefill gap before chunk {chunk}");
            assert_eq!(server.pump(), 1);
        }
        assert_eq!(server.in_flight(), 0);
        assert_eq!(server.pump(), 0, "no chunks left");
        assert_eq!(rx.recv().unwrap().unwrap().len(), hidden * tokens);
        assert_eq!(server.stats().snapshot().prefill_chunks, 4);
    }

    #[test]
    fn shutdown_rejects_new_prefills_and_bounces_queued_chunks() {
        let mut server = tiny_server(ServerConfig {
            prefill_chunk: 2,
            coalesce_wait: Duration::ZERO,
            ..Default::default()
        });
        let hidden = server.model().config().hidden;
        let id = server.create_session(0).unwrap();
        let rx = server.submit_prefill(id, &token(91, hidden * 6), 6).unwrap();
        server.shutdown();
        // The queued first chunk was bounced through the job's channel…
        assert!(matches!(rx.recv().unwrap(), Err(ServeError::ShuttingDown)));
        assert_eq!(server.in_flight(), 0);
        // …and new prefills are rejected outright.
        assert!(matches!(
            server.submit_prefill(id, &token(92, hidden), 1),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn close_session_interlocks_with_the_checked_out_window() {
        // Satellite regression: a close racing the batch-execution window
        // used to get UnknownSession for a live session, and the window
        // then re-inserted the session as an untracked zombie. The
        // CheckedOut marker makes the close wait for the window and free
        // the session at check-in.
        let server = Arc::new(tiny_server(ServerConfig {
            prefill_chunk: 64,
            kv_capacity: 64,
            coalesce_wait: Duration::ZERO,
            ..Default::default()
        }));
        let hidden = server.model().config().hidden;
        let id = server.create_session(0).unwrap();
        // A single 48-token chunk: a long execution window.
        let _rx = server.submit_prefill(id, &token(93, hidden * 48), 48).unwrap();
        std::thread::scope(|scope| {
            let pumper = {
                let server = Arc::clone(&server);
                scope.spawn(move || server.pump())
            };
            // Wait until the chunk has been collected (ring empty) and is
            // executing (still in flight) — the checked-out window.
            while !(server.pending() == 0 && server.in_flight() > 0) {
                std::hint::spin_loop();
            }
            // Close mid-window: must succeed (waiting for the window),
            // never report a live session as unknown.
            let generated = server.close_session(id).unwrap();
            assert_eq!(generated, 0, "prefill decodes no tokens");
            assert_eq!(pumper.join().unwrap(), 1);
        });
        assert_eq!(server.session_count(), 0, "no zombie session survives the race");
        assert!(matches!(server.close_session(id), Err(ServeError::UnknownSession(_))));
        // The freed id is really gone from the table: new work bounces.
        assert!(matches!(
            server.submit_prefill(id, &token(94, hidden), 1),
            Err(ServeError::UnknownSession(_))
        ));
    }

    #[test]
    fn close_session_mid_multi_chunk_prefill_frees_the_session_and_aborts_the_job() {
        // Closing between chunks of a longer prefill: the close wins, the
        // session's KV cache is freed, and the orphaned continuation chunk
        // errors through the prefill's completion channel instead of
        // resurrecting the session.
        let server = tiny_server(ServerConfig {
            prefill_chunk: 2,
            kv_capacity: 16,
            coalesce_wait: Duration::ZERO,
            ..Default::default()
        });
        let hidden = server.model().config().hidden;
        let id = server.create_session(0).unwrap();
        let rx = server.submit_prefill(id, &token(95, hidden * 6), 6).unwrap();
        assert_eq!(server.pump(), 1, "first chunk executes");
        assert_eq!(server.close_session(id).unwrap(), 0, "close between chunks succeeds");
        assert_eq!(server.session_count(), 0);
        // The continuation chunk finds the session gone and aborts the job.
        assert_eq!(server.pump(), 0);
        assert!(matches!(rx.recv().unwrap(), Err(ServeError::UnknownSession(_))));
        assert_eq!(server.in_flight(), 0, "aborted chunk retired its in-flight count");
    }

    #[test]
    fn backpressure_surfaces_to_submitter() {
        let server = tiny_server(ServerConfig { queue_capacity: 2, ..Default::default() });
        let hidden = server.model().config().hidden;
        let id = server.create_session(0).unwrap();
        let x = token(3, hidden);
        let _r1 = server.submit_step(id, &x).unwrap();
        let _r2 = server.submit_step(id, &x).unwrap();
        assert!(matches!(server.submit_step(id, &x), Err(ServeError::Backpressure { tenant: 0 })));
        assert_eq!(server.stats().rejected_backpressure.load(Ordering::Relaxed), 1);
        // Prefills ride the same bounded rings: a full ring bounces them
        // too (and releases their in-flight count).
        let before = server.in_flight();
        assert!(matches!(
            server.submit_prefill(id, &x, 1),
            Err(ServeError::Backpressure { tenant: 0 })
        ));
        assert_eq!(server.in_flight(), before);
    }

    #[test]
    fn kv_exhaustion_is_an_error_not_a_crash() {
        let server = tiny_server(ServerConfig { kv_capacity: 2, ..Default::default() });
        let hidden = server.model().config().hidden;
        let id = server.create_session(0).unwrap();
        let _ = server.prefill(id, &token(4, hidden * 2), 2).unwrap();
        // Prefill beyond capacity rejected up front.
        assert!(matches!(
            server.prefill(id, &token(5, hidden), 1),
            Err(ServeError::KvExhausted { context: 2, capacity: 2 })
        ));
        // A queued step on a full session errors through the reply channel.
        let rx = server.submit_step(id, &token(6, hidden)).unwrap();
        server.pump();
        assert!(matches!(rx.recv().unwrap(), Err(ServeError::KvExhausted { .. })));
        // The session survives for inspection/closing.
        assert_eq!(server.close_session(id).unwrap(), 0);
    }

    #[test]
    fn bad_input_length_is_rejected() {
        let server = tiny_server(ServerConfig::default());
        let id = server.create_session(0).unwrap();
        assert!(matches!(server.submit_step(id, &[1.0, 2.0]), Err(ServeError::BadInput { .. })));
        assert!(matches!(server.prefill(id, &[1.0], 1), Err(ServeError::BadInput { .. })));
    }

    #[test]
    fn background_batcher_serves_blocking_steps() {
        let mut server = tiny_server(ServerConfig {
            tenants: 2,
            coalesce_wait: Duration::from_micros(100),
            ..Default::default()
        });
        server.start();
        let hidden = server.model().config().hidden;
        let ids: Vec<SessionId> = (0..4).map(|s| server.create_session(s % 2).unwrap()).collect();
        std::thread::scope(|scope| {
            for (s, &id) in ids.iter().enumerate() {
                let server = &server;
                scope.spawn(move || {
                    let x = token(900 + s as u64, hidden);
                    for _ in 0..3 {
                        let y = server.step(id, &x).unwrap();
                        assert_eq!(y.len(), hidden);
                    }
                });
            }
        });
        server.shutdown();
        let snap = server.stats().snapshot();
        assert_eq!(snap.completed, 12);
        assert!(matches!(
            server.submit_step(ids[0], &token(1, hidden)),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn warm_tuning_covers_decode_and_prefill_shapes() {
        let server = tiny_server(ServerConfig { kv_capacity: 16, ..Default::default() });
        let decode = server.decode_gemm_problems();
        // Every width 1..=max_batch (8) x the three per-layer GEMMs: the
        // batcher can hand the fused path any ragged B and the DB lookup
        // is exact-match, so all of them must be warmed.
        assert_eq!(decode.len(), 24);
        for b in 1..=8 {
            assert!(decode.iter().any(|p| p.n == b), "decode width {b} warmed");
        }
        let prefill = server.prefill_gemm_problems();
        assert!(!prefill.is_empty());
        assert!(prefill.iter().all(|p| p.n > 1), "tokens = 1 rides the decode set");
        assert!(prefill.iter().any(|p| p.n == 16), "kv-capacity prompt width present");
        // Warm count = distinct (m, n, k) across both sets, once under the
        // gemm keys and once under the spmm keys (the SpMM warm-up rides
        // the same geometry).
        let distinct: std::collections::BTreeSet<(usize, usize, usize)> =
            decode.iter().chain(&prefill).map(|p| (p.m, p.n, p.k)).collect();
        let tuned = server.warm_tuning(&Platform::zen4(), 4);
        assert_eq!(tuned, 2 * distinct.len());
        assert_eq!(server.tuning_db().len(), 2 * distinct.len());
        // The warmed snapshot is live in the kernel-selection registry —
        // and the spmm keys now *hit* instead of falling through.
        assert!(pl_dnn::tuning::is_installed());
        let p = &decode[0];
        let shape = pl_kernels::GemmShape::with_default_blocks(p.m, p.n, p.k);
        assert!(
            pl_dnn::tuning::lookup_spmm(&shape).is_some(),
            "spmm lookup must hit after warm_tuning"
        );
        // Idempotent.
        assert_eq!(server.warm_tuning(&Platform::zen4(), 4), 0);
    }

    #[test]
    fn fused_pump_matches_serial_within_tolerance_and_records_shapes() {
        let mk = |fused| {
            tiny_server(ServerConfig { fused, coalesce_wait: Duration::ZERO, ..Default::default() })
        };
        let fused_server = mk(true);
        let serial_server = mk(false);
        let hidden = fused_server.model().config().hidden;
        let (h, f) = (hidden, fused_server.model().config().ffn);
        let n = 4;
        let xs: Vec<Vec<f32>> = (0..n).map(|s| token(700 + s as u64, hidden)).collect();

        let run = |server: &Server| -> Vec<Vec<f32>> {
            let ids: Vec<SessionId> = (0..n).map(|_| server.create_session(0).unwrap()).collect();
            let rxs: Vec<_> =
                ids.iter().zip(&xs).map(|(&id, x)| server.submit_step(id, x).unwrap()).collect();
            assert_eq!(server.pump(), n);
            rxs.into_iter().map(|rx| rx.recv().unwrap().unwrap()).collect()
        };
        let got_fused = run(&fused_server);
        let got_serial = run(&serial_server);
        for (s, (a, b)) in got_fused.iter().zip(&got_serial).enumerate() {
            let err = pl_tensor::max_rel_err(a, b);
            assert!(err <= 1e-5, "session {s}: rel err {err}");
        }
        let snap = fused_server.stats().snapshot();
        assert_eq!(snap.fused_batches, 1);
        let layers = fused_server.model().config().layers as u64;
        assert_eq!(
            snap.fused_gemm_shapes,
            vec![((h, n, h), 4 * layers), ((h, n, f), layers), ((f, n, h), layers)],
            "the hidden x B GEMM executions are observable"
        );
        assert_eq!(serial_server.stats().snapshot().fused_batches, 0);
    }

    #[test]
    fn fused_mixed_batch_runs_decode_lanes_fused_and_chunk_serially() {
        // A fused-mode batch holding decode lanes *and* a prefill chunk:
        // the lanes fuse (recorded at the lane count, not the batch
        // size), the chunk executes as its own forward, and both land.
        let server = tiny_server(ServerConfig {
            fused: true,
            prefill_chunk: 4,
            kv_capacity: 32,
            coalesce_wait: Duration::ZERO,
            ..Default::default()
        });
        let hidden = server.model().config().hidden;
        let decode_ids: Vec<SessionId> =
            (0..3).map(|_| server.create_session(0).unwrap()).collect();
        let prefill_id = server.create_session(0).unwrap();
        let rxs: Vec<_> = decode_ids
            .iter()
            .enumerate()
            .map(|(s, &id)| server.submit_step(id, &token(30 + s as u64, hidden)).unwrap())
            .collect();
        let prompt = token(40, hidden * 8);
        let prx = server.submit_prefill(prefill_id, &prompt, 8).unwrap();
        assert_eq!(server.pump(), 4, "3 decode lanes + 1 chunk in one batch");
        assert_eq!(server.pump(), 1, "continuation chunk");
        for rx in rxs {
            rx.recv().unwrap().unwrap();
        }
        let y = prx.recv().unwrap().unwrap();
        let snap = server.stats().snapshot();
        assert_eq!(snap.mixed_batches, 1);
        assert_eq!(snap.prefill_chunks, 2);
        assert_eq!(snap.fused_batches, 1, "only the decode-bearing batch fuses");
        assert!(
            snap.fused_gemm_shapes.iter().all(|&((_, n, _), _)| n == 3),
            "fused width is the decode-lane count, not the batch size: {:?}",
            snap.fused_gemm_shapes
        );
        // The chunk path is the serial forward even in fused mode.
        let pool = ThreadPool::new(2);
        let mut st = server.model().new_state(32);
        assert_eq!(y, server.model().forward_chunked(&mut st, &prompt, 8, 4, &pool));
    }

    #[test]
    fn mode_policy_overrides_configured_mode_per_width() {
        // Config says serial, but a measured table that prefers fused at
        // width >= 1 must flip the batch to the fused path — and removing
        // the policy (empty table) must fall back to the config again.
        let server =
            tiny_server(ServerConfig { coalesce_wait: Duration::ZERO, ..Default::default() });
        assert!(server.mode_policy().is_none());
        let hidden = server.model().config().hidden;
        let run_batch_of = |n: usize| {
            let ids: Vec<SessionId> = (0..n).map(|_| server.create_session(0).unwrap()).collect();
            let rxs: Vec<_> = ids
                .iter()
                .enumerate()
                .map(|(s, &id)| server.submit_step(id, &token(900 + s as u64, hidden)).unwrap())
                .collect();
            assert_eq!(server.pump(), n);
            for rx in rxs {
                rx.recv().unwrap().unwrap();
            }
            for id in ids {
                server.close_session(id).unwrap();
            }
        };
        server.install_mode_policy(BatchModeTable::from_measurements(&[(1, 0.0, 1.0)]));
        assert!(server.mode_policy().is_some());
        run_batch_of(4);
        assert_eq!(server.stats().snapshot().fused_batches, 1, "policy must force fused");
        server.install_mode_policy(BatchModeTable::from_measurements(&[]));
        assert!(server.mode_policy().is_none(), "empty table reverts to config");
        run_batch_of(4);
        assert_eq!(server.stats().snapshot().fused_batches, 1, "config mode is serial again");
    }

    #[test]
    fn prefill_chunk_is_a_live_knob() {
        let server = tiny_server(ServerConfig {
            prefill_chunk: 4,
            kv_capacity: 32,
            coalesce_wait: Duration::ZERO,
            ..Default::default()
        });
        assert_eq!(server.prefill_chunk(), 4);
        server.set_prefill_chunk(8);
        assert_eq!(server.prefill_chunk(), 8);
        let hidden = server.model().config().hidden;
        let id = server.create_session(0).unwrap();
        let rx = server.submit_prefill(id, &token(77, hidden * 8), 8).unwrap();
        assert_eq!(server.pump(), 1, "8 tokens fit a single 8-token chunk");
        assert_eq!(server.in_flight(), 0);
        rx.recv().unwrap().unwrap();
        assert_eq!(server.stats().snapshot().prefill_chunks, 1);
        server.set_prefill_chunk(0);
        assert_eq!(server.prefill_chunk(), 1, "chunk size clamps to at least one token");
    }

    #[test]
    fn hot_gemm_problems_weights_serial_decode_by_completed_steps() {
        let server =
            tiny_server(ServerConfig { coalesce_wait: Duration::ZERO, ..Default::default() });
        assert!(server.hot_gemm_problems().is_empty(), "no traffic, no hot shapes");
        let hidden = server.model().config().hidden;
        let id = server.create_session(0).unwrap();
        for s in 0..3 {
            let rx = server.submit_step(id, &token(40 + s, hidden)).unwrap();
            server.pump();
            rx.recv().unwrap().unwrap();
        }
        let hot = server.hot_gemm_problems();
        assert!(!hot.is_empty());
        for (p, w) in &hot {
            assert_eq!(p.n, 1, "serial decode traffic is width-1: {p:?}");
            assert_eq!(*w, 3, "weight is the completed-step count");
        }
    }

    #[test]
    fn hot_gemm_problems_harvests_fused_shape_histogram() {
        let server = tiny_server(ServerConfig {
            fused: true,
            coalesce_wait: Duration::ZERO,
            ..Default::default()
        });
        let hidden = server.model().config().hidden;
        let n = 4;
        let ids: Vec<SessionId> = (0..n).map(|_| server.create_session(0).unwrap()).collect();
        let rxs: Vec<_> = ids
            .iter()
            .enumerate()
            .map(|(s, &id)| server.submit_step(id, &token(60 + s as u64, hidden)).unwrap())
            .collect();
        assert_eq!(server.pump(), n);
        for rx in rxs {
            rx.recv().unwrap().unwrap();
        }
        let hot = server.hot_gemm_problems();
        assert!(!hot.is_empty());
        assert!(hot.iter().all(|(p, _)| p.n == n), "fused harvest carries the batch width");
        assert!(hot.windows(2).all(|w| w[0].1 >= w[1].1), "sorted hottest-first");
        // The 4-per-layer hidden x hidden shape outweighs the FFN shapes.
        let layers = server.model().config().layers as u64;
        assert_eq!(hot[0].1, 4 * layers);
    }

    #[test]
    fn watchdog_detects_stalled_pump_but_never_fires_idle() {
        // A huge SLO target isolates the watchdog: the deliberate stall
        // below would otherwise also blow the burn rate and the test
        // could not tell Stalled from Degraded recovery.
        let server = tiny_server(ServerConfig {
            coalesce_wait: Duration::ZERO,
            slo_p99_us: 60_000_000,
            watchdog_deadline: Duration::from_millis(50),
            ..Default::default()
        });
        // Idle-but-empty: nothing pending, so no amount of inactivity
        // counts as a stall.
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(server.health(), Health::Healthy, "idle server must not stall");
        // Deliberately stall a manual pump: submit a step, never pump.
        let hidden = server.model().config().hidden;
        let id = server.create_session(0).unwrap();
        let rx = server.submit_step(id, &token(9, hidden)).unwrap();
        assert_eq!(server.health(), Health::Healthy, "first pending observation arms");
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(server.health(), Health::Stalled, "pending work, no batch for the deadline");
        // Progress clears the stall: one pump retires the backlog.
        assert_eq!(server.pump(), 1);
        rx.recv().unwrap().unwrap();
        assert_eq!(server.health(), Health::Healthy, "progress + empty queue recovers");
    }

    #[test]
    fn per_tenant_metrics_account_steps_chunks_and_rejections() {
        let server = tiny_server(ServerConfig {
            tenants: 2,
            queue_capacity: 2,
            prefill_chunk: 4,
            coalesce_wait: Duration::ZERO,
            ..Default::default()
        });
        let hidden = server.model().config().hidden;
        let a = server.create_session(0).unwrap();
        let b = server.create_session(1).unwrap();
        // Tenant 0: two steps fill the ring, the third bounces.
        let rx0 = server.submit_step(a, &token(1, hidden)).unwrap();
        let rx1 = server.submit_step(a, &token(2, hidden)).unwrap();
        assert!(matches!(
            server.submit_step(a, &token(3, hidden)),
            Err(ServeError::Backpressure { tenant: 0 })
        ));
        while server.pump() > 0 {}
        rx0.recv().unwrap().unwrap();
        rx1.recv().unwrap().unwrap();
        // Tenant 1: an 8-token prompt through 4-token chunks = 2 chunks.
        let rxp = server.submit_prefill(b, &token(4, hidden * 8), 8).unwrap();
        while server.pump() > 0 {}
        rxp.recv().unwrap().unwrap();
        let snap = server.metrics_snapshot();
        assert_eq!(snap.counter_value("pl_steps_total", &[("tenant", "0")]), 2);
        assert_eq!(snap.counter_value("pl_steps_total", &[("tenant", "1")]), 0);
        assert_eq!(snap.counter_value("pl_prefill_chunks_total", &[("tenant", "1")]), 2);
        assert_eq!(snap.counter_value("pl_prefill_chunks_total", &[("tenant", "0")]), 0);
        assert_eq!(snap.counter_value("pl_rejected_backpressure_total", &[("tenant", "0")]), 1);
        assert!(snap.counter_value("pl_batches_total", &[]) >= 2);
        let qw = snap.histogram_series("pl_queue_wait_us", &[("tenant", "0")]).unwrap();
        assert_eq!(qw.count, 2, "one queue-wait observation per delivered step");
        let ex = snap.histogram_series("pl_execute_us", &[("tenant", "0")]).unwrap();
        assert_eq!(ex.count, 2);
        assert_eq!(snap.gauge_value("pl_sessions_live", &[]), Some(2.0));
        assert_eq!(snap.gauge_value("pl_pending", &[]), Some(0.0));
        // SLO windows are per-tenant too: tenant 0 saw the traffic.
        assert_eq!(server.tenant_slo(0).unwrap().observations(), 2);
        assert_eq!(server.tenant_slo(1).unwrap().observations(), 0);
        assert!(server.tenant_slo(2).is_none());
    }

    #[test]
    fn prometheus_exposition_is_conformant() {
        let server = tiny_server(ServerConfig {
            tenants: 2,
            coalesce_wait: Duration::ZERO,
            ..Default::default()
        });
        let hidden = server.model().config().hidden;
        for t in 0..2 {
            let id = server.create_session(t).unwrap();
            let rx = server.submit_step(id, &token(20 + t as u64, hidden)).unwrap();
            while server.pump() > 0 {}
            rx.recv().unwrap().unwrap();
        }
        let text = pl_metrics::render_prometheus(&server.metrics_snapshot());
        // The in-repo conformance parser: family/type/label/bucket
        // well-formedness, monotone cumulative buckets, no orphan TYPEs.
        let report = pl_metrics::parse_prometheus(&text)
            .unwrap_or_else(|e| panic!("non-conformant exposition: {e}\n{text}"));
        for fam in [
            "pl_steps_total",
            "pl_prefill_chunks_total",
            "pl_rejected_backpressure_total",
            "pl_queue_wait_us",
            "pl_execute_us",
            "pl_batches_total",
            "pl_slo_burn_rate",
            "pl_sessions_live",
            "pl_pending",
            "pl_in_flight",
            "pl_shard_health",
            "pl_kv_pages_free",
            "pl_kv_pages_shared",
            "pl_kv_sessions_spilled",
            "pl_migrations_total",
        ] {
            assert!(report.families.contains_key(fam), "family {fam} missing from exposition");
        }
        assert!(report.histogram_series >= 4, "2 tenants x 2 latency histograms");
        assert!(text.contains("pl_steps_total{tenant=\"0\"} 1"));
        assert!(text.contains("pl_queue_wait_us_bucket{"));
        assert!(text.contains("le=\"+Inf\""));
    }

    #[test]
    fn prefix_sharing_across_sessions_dedups_pages_and_stays_bitwise() {
        // Two sessions prefill the same 6-token prompt over 4-token pages
        // (one full + one partial page per layer). The second session must
        // adopt the first's cached pages — zero marginal resident pages —
        // and each stream's first divergent decode step COW-splits the
        // shared partial page without perturbing either output.
        let server = tiny_server(ServerConfig {
            kv_page_tokens: 4,
            kv_capacity: 32,
            coalesce_wait: Duration::ZERO,
            ..Default::default()
        });
        let hidden = server.model().config().hidden;
        let tokens = 6;
        let prompt = token(91, hidden * tokens);
        let a = server.create_session(0).unwrap();
        let ya = server.prefill(a, &prompt, tokens).unwrap();
        let resident = server.kv_pool().allocated_pages();
        assert!(resident > 0);
        let b = server.create_session(0).unwrap();
        let yb = server.prefill(b, &prompt, tokens).unwrap();
        assert_eq!(ya, yb, "identical prompts must produce identical outputs");
        assert_eq!(
            server.kv_pool().allocated_pages(),
            resident,
            "second session must adopt the cached pages, not keep its own copy"
        );
        assert!(server.prefix_cache().shared_pages() > 0);
        let xa = token(92, hidden);
        let xb = token(93, hidden);
        for (id, x) in [(a, &xa), (b, &xb)] {
            let rx = server.submit_step(id, x).unwrap();
            while server.pump() > 0 {}
            let got = rx.recv().unwrap().unwrap();
            let pool = ThreadPool::new(2);
            let mut st = server.model().new_state(32);
            let _ = server.model().forward(&mut st, &prompt, tokens, &pool);
            let want = server.model().forward(&mut st, x, 1, &pool);
            assert_eq!(got, want, "post-split decode must stay bit-identical");
        }
        assert!(server.kv_pool().cow_splits() > 0, "divergent appends must have COW-split");
        let snap = server.metrics_snapshot();
        assert!(snap.gauge_value("pl_kv_pages_shared", &[]).unwrap() > 0.0);
    }

    #[test]
    fn idle_spill_returns_pages_and_restores_bitwise_on_next_step() {
        let server = tiny_server(ServerConfig {
            kv_page_tokens: 4,
            kv_capacity: 32,
            share_prefix: false,
            coalesce_wait: Duration::ZERO,
            ..Default::default()
        });
        let hidden = server.model().config().hidden;
        let id = server.create_session(0).unwrap();
        let prompt = token(95, hidden * 5);
        let _ = server.prefill(id, &prompt, 5).unwrap();
        assert!(server.kv_pool().allocated_pages() > 0);
        // Nothing is idle at a generous threshold; everything is at zero.
        assert_eq!(server.spill_idle(Duration::from_secs(3600)), 0);
        assert_eq!(server.spill_idle(Duration::ZERO), 1);
        assert_eq!(server.spilled_sessions(), 1);
        assert_eq!(server.kv_pool().allocated_pages(), 0, "spill must return every page");
        let snap = server.metrics_snapshot();
        assert_eq!(snap.gauge_value("pl_kv_sessions_spilled", &[]), Some(1.0));
        assert!(snap.gauge_value("pl_kv_pages_free", &[]).unwrap() > 0.0);
        // The next step transparently restores and stays bit-identical.
        let x = token(96, hidden);
        let rx = server.submit_step(id, &x).unwrap();
        while server.pump() > 0 {}
        let got = rx.recv().unwrap().unwrap();
        assert_eq!(server.spilled_sessions(), 0);
        let pool = ThreadPool::new(2);
        let mut st = server.model().new_state(32);
        let _ = server.model().forward(&mut st, &prompt, 5, &pool);
        let want = server.model().forward(&mut st, &x, 1, &pool);
        assert_eq!(got, want, "restore-from-spill must be bit-identical");
    }

    #[test]
    fn export_import_migrates_a_session_bit_identically() {
        let model = Arc::new(DecoderModel::new(DecoderConfig::scaled_for_tests(), 77));
        let pool = Arc::new(ThreadPool::new(4));
        let cfg = ServerConfig { coalesce_wait: Duration::ZERO, ..Default::default() };
        let src = Server::new(Arc::clone(&model), Arc::clone(&pool), cfg.clone());
        // The destination even uses a different page geometry: the dense
        // snapshot is page-layout-independent.
        let dst = Server::new(
            Arc::clone(&model),
            pool,
            ServerConfig { kv_page_tokens: 8, ..cfg.clone() },
        );
        let hidden = model.config().hidden;
        let id = src.create_session(0).unwrap();
        let prompt = token(70, hidden * 4);
        let _ = src.prefill(id, &prompt, 4).unwrap();
        let mut xs = Vec::new();
        for s in 0..3u64 {
            let x = token(71 + s, hidden);
            let rx = src.submit_step(id, &x).unwrap();
            while src.pump() > 0 {}
            rx.recv().unwrap().unwrap();
            xs.push(x);
        }
        let export = src.export_session(id).unwrap();
        assert_eq!(export.generated, 3);
        assert_eq!(src.session_count(), 0);
        assert!(matches!(src.submit_step(id, &xs[0]), Err(ServeError::UnknownSession(_))));
        let new_id = dst.import_session(&export).unwrap();
        assert_eq!(dst.session_count(), 1);
        let mut got = Vec::new();
        for s in 0..3u64 {
            let x = token(81 + s, hidden);
            let rx = dst.submit_step(new_id, &x).unwrap();
            while dst.pump() > 0 {}
            got.push(rx.recv().unwrap().unwrap());
            xs.push(x);
        }
        // Baseline: the uninterrupted stream on one decoder.
        let tpool = ThreadPool::new(2);
        let mut st = model.new_state(cfg.kv_capacity);
        let _ = model.forward(&mut st, &prompt, 4, &tpool);
        let want: Vec<Vec<f32>> = xs.iter().map(|x| model.forward(&mut st, x, 1, &tpool)).collect();
        assert_eq!(&got[..], &want[3..], "migrated continuation must be bit-identical");
        assert_eq!(dst.close_session(new_id).unwrap(), 6, "generated count carries the move");
        let snap = dst.metrics_snapshot();
        assert_eq!(snap.counter_value("pl_migrations_total", &[]), 1);
    }

    #[test]
    fn max_queued_tokens_applies_backpressure_through_the_config() {
        let server = tiny_server(ServerConfig {
            max_queued_tokens: 1,
            coalesce_wait: Duration::ZERO,
            ..Default::default()
        });
        let hidden = server.model().config().hidden;
        let a = server.create_session(0).unwrap();
        let b = server.create_session(0).unwrap();
        let rx = server.submit_step(a, &token(1, hidden)).unwrap();
        // The 1-token budget is spent: the next step bounces even though
        // the ring has plenty of room.
        assert!(matches!(
            server.submit_step(b, &token(2, hidden)),
            Err(ServeError::Backpressure { tenant: 0 })
        ));
        assert_eq!(server.stats().rejected_backpressure.load(Ordering::Relaxed), 1);
        while server.pump() > 0 {}
        rx.recv().unwrap().unwrap();
        // Executed work released its budget; admission resumes.
        let rx = server.submit_step(b, &token(3, hidden)).unwrap();
        while server.pump() > 0 {}
        rx.recv().unwrap().unwrap();
    }
}
