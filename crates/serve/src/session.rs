//! Sessions: one decode stream per connected client.

use pl_dnn::DecoderState;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Instant;

/// Server-assigned session identifier.
pub type SessionId = u64;

/// Tenant index (`0..ServerConfig::tenants`).
pub type TenantId = usize;

/// One decode stream: the per-session KV cache plus bookkeeping. Weights
/// are *not* here — every session shares the server's `Arc<DecoderModel>`,
/// so N sessions cost N KV caches and one copy of the model.
pub struct Session {
    /// Server-assigned id.
    pub id: SessionId,
    /// Owning tenant.
    pub tenant: TenantId,
    /// KV cache and decode position.
    pub state: DecoderState,
    /// Tokens decoded through the step path.
    pub generated: u64,
    /// Creation time (for session-age metrics/eviction policies).
    pub created: Instant,
    /// Last time a batch executed work for this session — what
    /// [`crate::Server::spill_idle`] ages against.
    pub last_active: Instant,
    /// Monotonic ticket dispenser for submitted decode steps. Shared
    /// (`Arc`) with the session's `CheckedOut` marker so a step submitted
    /// during an execution window still draws an ordered ticket.
    pub submit_seq: Arc<AtomicU64>,
    /// The next decode-step ticket to execute — the program-order cursor
    /// batch checkout enforces (a step whose ticket is ahead of this is
    /// deferred, so concurrent pumps cannot reorder a pipelined stream).
    pub exec_seq: u64,
}

impl Session {
    /// Fresh session around an empty KV state.
    pub fn new(id: SessionId, tenant: TenantId, state: DecoderState) -> Self {
        let now = Instant::now();
        Session {
            id,
            tenant,
            state,
            generated: 0,
            created: now,
            last_active: now,
            submit_seq: Arc::new(AtomicU64::new(0)),
            exec_seq: 0,
        }
    }

    /// Tokens currently held in the KV cache.
    pub fn context_len(&self) -> usize {
        self.state.cached_tokens()
    }

    /// Whether another `tokens`-token forward fits in the KV cache.
    pub fn fits(&self, tokens: usize) -> bool {
        self.state.cached_tokens() + tokens <= self.state.capacity()
    }
}
