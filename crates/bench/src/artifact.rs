//! The machine-readable perf artifact: `BENCH_serve.json`.
//!
//! Bench harnesses and demos append their measured rows here so the perf
//! trajectory is tracked in-repo from PR to PR, keyed by
//! `{mode, batch, shards}`. Hand-rolled JSON both ways (this environment
//! has no serialization crates): the writer emits one canonical shape and
//! the reader parses exactly that shape, tolerating a missing or foreign
//! file by starting fresh.

use std::path::{Path, PathBuf};

/// Resolves `file` against the workspace root — the nearest ancestor of
/// the current directory whose `Cargo.toml` declares `[workspace]`
/// (falling back to the nearest plain `Cargo.toml`, then to the current
/// directory). Cargo runs bench binaries from the package directory and
/// examples from the workspace root; anchoring here makes every harness
/// read and write the *same* artifact, and stopping at the first
/// workspace manifest keeps a stray `Cargo.toml` higher up (a scratch
/// project in `$HOME`, say) from silently redirecting the artifact
/// outside the repository.
pub fn workspace_path(file: &str) -> PathBuf {
    let start = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut fallback: Option<PathBuf> = None;
    let mut dir: &Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if fallback.is_none() {
                fallback = Some(dir.to_path_buf());
            }
            let is_workspace =
                std::fs::read_to_string(&manifest).is_ok_and(|text| text.contains("[workspace]"));
            if is_workspace {
                return dir.join(file);
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => break,
        }
    }
    fallback.unwrap_or(start).join(file)
}

/// One measured throughput row.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Execution mode (`serial`, `fused`, `router-serial`, …).
    pub mode: String,
    /// The `max_batch` setting of the run.
    pub batch: usize,
    /// Serving shards (1 = a single `Server`).
    pub shards: usize,
    /// Measured decode throughput.
    pub steps_per_s: f64,
    /// Measured decode p99 queue-to-reply latency in µs (0 when the run
    /// did not measure latency — throughput-only rows).
    pub p99_us: f64,
}

impl BenchRow {
    fn key(&self) -> (String, usize, usize) {
        (self.mode.clone(), self.batch, self.shards)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"mode\":\"{}\",\"batch\":{},\"shards\":{},\"steps_per_s\":{:.3},\"p99_us\":{:.1}}}",
            escape(&self.mode),
            self.batch,
            self.shards,
            self.steps_per_s,
            self.p99_us
        )
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The artifact: a keyed set of [`BenchRow`]s with JSON persistence.
#[derive(Debug, Default)]
pub struct BenchArtifact {
    rows: Vec<BenchRow>,
}

impl BenchArtifact {
    /// Empty artifact.
    pub fn new() -> Self {
        Self::default()
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[BenchRow] {
        &self.rows
    }

    /// Rows matching a shard count.
    pub fn rows_at_shards(&self, shards: usize) -> Vec<&BenchRow> {
        self.rows.iter().filter(|r| r.shards == shards).collect()
    }

    /// Inserts `row`, replacing any existing row with the same
    /// `{mode, batch, shards}` key — re-running a bench updates its rows
    /// in place instead of appending duplicates.
    pub fn upsert(&mut self, row: BenchRow) {
        match self.rows.iter_mut().find(|r| r.key() == row.key()) {
            Some(existing) => *existing = row,
            None => self.rows.push(row),
        }
    }

    /// Renders the canonical JSON document.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self.rows.iter().map(BenchRow::to_json).collect();
        format!("{{\n  \"bench\": \"serve_throughput\",\n  \"rows\": [\n    {}\n  ]\n}}\n", {
            rows.join(",\n    ")
        })
    }

    /// Parses a document produced by [`BenchArtifact::to_json`]. Returns
    /// `None` when the text lacks the document shape; a **row** that
    /// fails to parse is skipped rather than poisoning the document — a
    /// truncated tail (e.g. a previous writer died mid-save) must not
    /// wipe the rows that survived.
    pub fn from_json(text: &str) -> Option<Self> {
        let rows_start = text.find("\"rows\"")?;
        let open = text[rows_start..].find('[')? + rows_start;
        // A truncated document may have lost the closing bracket; parse
        // to the end in that case (the incomplete trailing object is
        // dropped by `split_objects`).
        let close = text[open..].rfind(']').map_or(text.len(), |i| i + open);
        let body = &text[open + 1..close];
        let mut rows = Vec::new();
        for obj in split_objects(body) {
            let parsed = (|| {
                Some(BenchRow {
                    mode: field_str(obj, "mode")?,
                    batch: field_num(obj, "batch")? as usize,
                    shards: field_num(obj, "shards")? as usize,
                    steps_per_s: field_num(obj, "steps_per_s")?,
                    // Older artifacts predate the latency column.
                    p99_us: field_num(obj, "p99_us").unwrap_or(0.0),
                })
            })();
            if let Some(row) = parsed {
                rows.push(row);
            }
        }
        Some(BenchArtifact { rows })
    }

    /// Loads from `path`; a missing or unparseable file yields an empty
    /// artifact (the bench will simply rewrite it).
    pub fn load(path: &Path) -> Self {
        std::fs::read_to_string(path)
            .ok()
            .and_then(|text| Self::from_json(&text))
            .unwrap_or_default()
    }

    /// Writes the canonical JSON document to `path` atomically (temp
    /// file + rename in the same directory), so a writer killed mid-save
    /// can never leave a truncated artifact behind.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }
}

/// Scans `rows` for serial/fused mode pairs at the same
/// `{batch, shards}` and returns one warning line per pair where the
/// fused row is *slower* than its serial twin. Pairing is by mode-name
/// substitution (`serial` → `fused`), so `serial`/`fused`,
/// `serial-i8`/`fused-i8` and `router-serial`/`router-fused` all
/// participate. Fused execution exists to raise decode arithmetic
/// intensity; a fused row losing to serial at the same batch means the
/// gather/pack overhead outweighs the GEMM win at that size, which the
/// trajectory should flag rather than silently record.
pub fn fused_regressions(rows: &[BenchRow]) -> Vec<String> {
    let mut out = Vec::new();
    for serial in rows.iter().filter(|r| r.mode.contains("serial")) {
        let fused_mode = serial.mode.replace("serial", "fused");
        let Some(fused) = rows
            .iter()
            .find(|r| r.mode == fused_mode && r.batch == serial.batch && r.shards == serial.shards)
        else {
            continue;
        };
        if fused.steps_per_s < serial.steps_per_s {
            out.push(format!(
                "warning: {} ({:.1} steps/s) < {} ({:.1} steps/s) at {{batch={}, shards={}}} — \
                 fused batching is not paying for its gather at this size",
                fused.mode,
                fused.steps_per_s,
                serial.mode,
                serial.steps_per_s,
                serial.batch,
                serial.shards
            ));
        }
    }
    out
}

/// Splits `body` into the interiors of its top-level `{...}` objects,
/// string-aware: braces inside quoted values (e.g. a mode named
/// `"router{2}"`) do not terminate an object.
fn split_objects(body: &str) -> Vec<&str> {
    let mut objects = Vec::new();
    let mut start = None;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if in_string {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' if start.is_none() => start = Some(i + 1),
            '}' => {
                if let Some(s) = start.take() {
                    objects.push(&body[s..i]);
                }
            }
            _ => {}
        }
    }
    objects
}

fn field_str(obj: &str, name: &str) -> Option<String> {
    let tag = format!("\"{name}\"");
    let at = obj.find(&tag)? + tag.len();
    let rest = obj[at..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    // Scan to the first *unescaped* quote, unescaping as we go.
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
}

fn field_num(obj: &str, name: &str) -> Option<f64> {
    let tag = format!("\"{name}\"");
    let at = obj.find(&tag)? + tag.len();
    let rest = obj[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(mode: &str, batch: usize, shards: usize, sps: f64) -> BenchRow {
        BenchRow { mode: mode.into(), batch, shards, steps_per_s: sps, p99_us: 0.0 }
    }

    #[test]
    fn json_roundtrip_preserves_rows() {
        let mut a = BenchArtifact::new();
        a.upsert(row("serial", 8, 1, 9442.125));
        a.upsert(row("fused", 8, 1, 12486.5));
        a.upsert(row("router-serial", 8, 2, 17000.0));
        a.upsert(BenchRow {
            mode: "mixed-chunked".into(),
            batch: 8,
            shards: 1,
            steps_per_s: 5000.0,
            p99_us: 512.5,
        });
        let parsed = BenchArtifact::from_json(&a.to_json()).expect("own output parses");
        assert_eq!(parsed.rows().len(), 4);
        assert_eq!(parsed.rows()[0].mode, "serial");
        assert_eq!(parsed.rows()[2].shards, 2);
        assert!((parsed.rows()[0].steps_per_s - 9442.125).abs() < 1e-9);
        assert!((parsed.rows()[3].p99_us - 512.5).abs() < 1e-9, "latency column round-trips");
    }

    #[test]
    fn rows_without_latency_column_parse_with_zero() {
        // Pre-latency-column artifacts must still load.
        let legacy = "{\n  \"bench\": \"serve_throughput\",\n  \"rows\": [\n    \
                      {\"mode\":\"serial\",\"batch\":8,\"shards\":1,\"steps_per_s\":100.000}\n  ]\n}\n";
        let parsed = BenchArtifact::from_json(legacy).expect("legacy shape parses");
        assert_eq!(parsed.rows().len(), 1);
        assert_eq!(parsed.rows()[0].p99_us, 0.0);
    }

    #[test]
    fn upsert_replaces_by_key() {
        let mut a = BenchArtifact::new();
        a.upsert(row("serial", 8, 1, 100.0));
        a.upsert(row("serial", 8, 2, 180.0));
        a.upsert(row("serial", 8, 1, 120.0)); // rerun updates in place
        assert_eq!(a.rows().len(), 2);
        assert!((a.rows()[0].steps_per_s - 120.0).abs() < 1e-9);
        assert_eq!(a.rows_at_shards(2).len(), 1);
    }

    #[test]
    fn truncated_tail_loses_only_the_broken_row() {
        let mut a = BenchArtifact::new();
        a.upsert(row("serial", 1, 1, 10.0));
        a.upsert(row("serial", 2, 1, 20.0));
        let full = a.to_json();
        // Simulate a writer killed mid-save: cut the document inside the
        // last row. The intact rows must survive the reload.
        let cut = full.rfind("\"batch\":2").unwrap();
        let truncated = &full[..cut + 3];
        let recovered = BenchArtifact::from_json(truncated).expect("document shape intact");
        assert_eq!(recovered.rows().len(), 1, "only the broken row is dropped");
        assert_eq!(recovered.rows()[0].batch, 1);
    }

    #[test]
    fn load_tolerates_missing_and_garbage() {
        let dir = std::env::temp_dir().join("pl_bench_artifact_test");
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("nope.json");
        assert!(BenchArtifact::load(&missing).rows().is_empty());
        let garbage = dir.join("garbage.json");
        std::fs::write(&garbage, "not json at all").unwrap();
        assert!(BenchArtifact::load(&garbage).rows().is_empty());
        // Save → load roundtrip through a real file.
        let mut a = BenchArtifact::new();
        a.upsert(row("serial", 4, 1, 55.5));
        let path = dir.join("ok.json");
        a.save(&path).unwrap();
        let back = BenchArtifact::load(&path);
        assert_eq!(back.rows().len(), 1);
        assert_eq!(back.rows()[0].batch, 4);
    }

    #[test]
    fn fused_regressions_flags_only_slower_fused_twins() {
        let rows = vec![
            row("serial", 8, 1, 8102.0),
            row("fused", 8, 1, 6440.0), // slower: must warn
            row("serial", 1, 1, 3000.0),
            row("fused", 1, 1, 3500.0), // faster: silent
            row("serial-i8", 8, 1, 9000.0),
            row("fused-i8", 8, 1, 8000.0), // slower: must warn
            row("router-serial", 16, 2, 100.0),
            // no router-fused twin at shards=2: unpaired rows are skipped
            row("mixed-chunked", 8, 1, 1.0), // non-serial modes never pair
        ];
        let warnings = fused_regressions(&rows);
        assert_eq!(warnings.len(), 2, "exactly the two slower fused rows warn: {warnings:?}");
        assert!(warnings[0].contains("fused") && warnings[0].contains("batch=8"));
        assert!(warnings[1].contains("fused-i8"));
    }

    #[test]
    fn fused_regressions_pairs_within_batch_and_shards() {
        // A fused row at a different batch must not pair with this serial row.
        let rows = vec![row("serial", 8, 1, 100.0), row("fused", 4, 1, 50.0)];
        assert!(fused_regressions(&rows).is_empty());
    }

    #[test]
    fn mode_strings_are_escaped() {
        let mut a = BenchArtifact::new();
        a.upsert(row("we\"ird\\mode", 1, 1, 1.0));
        // Braces inside a quoted mode must not break object splitting —
        // a single bad row must never wipe the accumulated trajectory.
        a.upsert(row("router{2}", 2, 2, 2.0));
        let parsed = BenchArtifact::from_json(&a.to_json()).unwrap();
        assert_eq!(parsed.rows().len(), 2);
        assert_eq!(parsed.rows()[0].mode, "we\"ird\\mode");
        assert_eq!(parsed.rows()[1].mode, "router{2}");
        assert_eq!(parsed.rows()[1].shards, 2);
    }
}
