//! The machine-readable perf artifact: `BENCH_serve.json`.
//!
//! Bench harnesses and demos append their measured rows here so the perf
//! trajectory is tracked in-repo from PR to PR, keyed by
//! `{mode, batch, shards, fingerprint}`. Hand-rolled JSON both ways (this
//! environment has no serialization crates): the writer emits one
//! canonical shape and the reader parses exactly that shape, tolerating a
//! missing or foreign file by starting fresh. Field scanning lives in
//! [`crate::json`], shared with the other artifact readers.

use crate::json::{field_num, field_str, split_objects};
use std::fmt;
use std::path::{Path, PathBuf};

/// Resolves `file` against the workspace root — the nearest ancestor of
/// the current directory whose `Cargo.toml` declares `[workspace]`
/// (falling back to the nearest plain `Cargo.toml`, then to the current
/// directory). Cargo runs bench binaries from the package directory and
/// examples from the workspace root; anchoring here makes every harness
/// read and write the *same* artifact, and stopping at the first
/// workspace manifest keeps a stray `Cargo.toml` higher up (a scratch
/// project in `$HOME`, say) from silently redirecting the artifact
/// outside the repository.
pub fn workspace_path(file: &str) -> PathBuf {
    let start = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut fallback: Option<PathBuf> = None;
    let mut dir: &Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if fallback.is_none() {
                fallback = Some(dir.to_path_buf());
            }
            let is_workspace =
                std::fs::read_to_string(&manifest).is_ok_and(|text| text.contains("[workspace]"));
            if is_workspace {
                return dir.join(file);
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => break,
        }
    }
    fallback.unwrap_or(start).join(file)
}

/// One measured throughput row.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Execution mode (`serial`, `fused`, `router-serial`, …).
    pub mode: String,
    /// The `max_batch` setting of the run.
    pub batch: usize,
    /// Serving shards (1 = a single `Server`).
    pub shards: usize,
    /// Measured decode throughput.
    pub steps_per_s: f64,
    /// Measured decode p99 queue-to-reply latency in µs (0 when the run
    /// did not measure latency — throughput-only rows).
    pub p99_us: f64,
    /// Host/topology fingerprint of the measuring machine, the same
    /// `os/arch/platform/threads` string `TUNE_db.json` entries carry
    /// (see `pl_retune::host_fingerprint`). Part of the row key: numbers
    /// from different hosts coexist instead of overwriting each other.
    /// Empty on rows written before the column existed.
    pub fingerprint: String,
}

impl BenchRow {
    fn key(&self) -> (String, usize, usize, String) {
        (self.mode.clone(), self.batch, self.shards, self.fingerprint.clone())
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"mode\":\"{}\",\"batch\":{},\"shards\":{},\"steps_per_s\":{:.3},\"p99_us\":{:.1},\"fingerprint\":\"{}\"}}",
            escape(&self.mode),
            self.batch,
            self.shards,
            self.steps_per_s,
            self.p99_us,
            escape(&self.fingerprint)
        )
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A fused row measuring *slower* than its serial twin — the condition
/// the perf trajectory must flag, since fused batching exists to win.
/// Carries the pair so tooling can rank by severity; `Display` renders
/// the human warning line the bench harnesses print.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The losing fused mode (`fused`, `fused-i8`, `router-fused`, …).
    pub fused_mode: String,
    /// The winning serial twin it was paired with.
    pub serial_mode: String,
    /// Shared `max_batch` of the pair.
    pub batch: usize,
    /// Shared shard count of the pair.
    pub shards: usize,
    /// Shared host fingerprint of the pair (empty on legacy rows).
    pub fingerprint: String,
    /// Fused throughput.
    pub fused_steps_per_s: f64,
    /// Serial throughput.
    pub serial_steps_per_s: f64,
}

impl Regression {
    fn to_json(&self) -> String {
        format!(
            "{{\"fused_mode\":\"{}\",\"serial_mode\":\"{}\",\"batch\":{},\"shards\":{},\"fingerprint\":\"{}\",\"fused_steps_per_s\":{:.3},\"serial_steps_per_s\":{:.3}}}",
            escape(&self.fused_mode),
            escape(&self.serial_mode),
            self.batch,
            self.shards,
            escape(&self.fingerprint),
            self.fused_steps_per_s,
            self.serial_steps_per_s
        )
    }
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "warning: {} ({:.1} steps/s) < {} ({:.1} steps/s) at {{batch={}, shards={}}} — \
             fused batching is not paying for its gather at this size",
            self.fused_mode,
            self.fused_steps_per_s,
            self.serial_mode,
            self.serial_steps_per_s,
            self.batch,
            self.shards
        )
    }
}

/// One row's throughput movement between two artifacts, matched by the
/// full `{mode, batch, shards, fingerprint}` key. `Display` renders a
/// one-line delta suitable for a PR comment or CI log.
#[derive(Debug, Clone, PartialEq)]
pub struct RowDelta {
    /// Execution mode of the matched pair.
    pub mode: String,
    /// Shared `max_batch`.
    pub batch: usize,
    /// Shared shard count.
    pub shards: usize,
    /// Shared host fingerprint.
    pub fingerprint: String,
    /// Throughput in the baseline artifact.
    pub base_steps_per_s: f64,
    /// Throughput in the new artifact.
    pub new_steps_per_s: f64,
    /// `(new - base) / base * 100`; 0 when the baseline is 0.
    pub delta_pct: f64,
}

impl fmt::Display for RowDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {{batch={}, shards={}}}: {:.1} -> {:.1} steps/s ({:+.1}%)",
            self.mode,
            self.batch,
            self.shards,
            self.base_steps_per_s,
            self.new_steps_per_s,
            self.delta_pct
        )
    }
}

/// Diffs two artifacts row-by-row: one [`RowDelta`] per key present in
/// **both**, in `new`'s row order. Rows only one side has (a bench that
/// gained or lost a mode, a different host's fingerprint) are skipped —
/// there is no movement to report without both endpoints.
pub fn compare(base: &BenchArtifact, new: &BenchArtifact) -> Vec<RowDelta> {
    new.rows()
        .iter()
        .filter_map(|n| {
            let b = base.rows().iter().find(|b| b.key() == n.key())?;
            let delta_pct = if b.steps_per_s == 0.0 {
                0.0
            } else {
                (n.steps_per_s - b.steps_per_s) / b.steps_per_s * 100.0
            };
            Some(RowDelta {
                mode: n.mode.clone(),
                batch: n.batch,
                shards: n.shards,
                fingerprint: n.fingerprint.clone(),
                base_steps_per_s: b.steps_per_s,
                new_steps_per_s: n.steps_per_s,
                delta_pct,
            })
        })
        .collect()
}

/// The artifact: a keyed set of [`BenchRow`]s with JSON persistence.
#[derive(Debug, Default)]
pub struct BenchArtifact {
    rows: Vec<BenchRow>,
}

impl BenchArtifact {
    /// Empty artifact.
    pub fn new() -> Self {
        Self::default()
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[BenchRow] {
        &self.rows
    }

    /// Rows matching a shard count.
    pub fn rows_at_shards(&self, shards: usize) -> Vec<&BenchRow> {
        self.rows.iter().filter(|r| r.shards == shards).collect()
    }

    /// Inserts `row`, replacing any existing row with the same
    /// `{mode, batch, shards, fingerprint}` key — re-running a bench
    /// updates its rows in place instead of appending duplicates.
    pub fn upsert(&mut self, row: BenchRow) {
        match self.rows.iter_mut().find(|r| r.key() == row.key()) {
            Some(existing) => *existing = row,
            None => self.rows.push(row),
        }
    }

    /// Renders the canonical JSON document. The `regressions` block is
    /// *derived* from the rows at render time (never stored), so it can
    /// never drift stale against the numbers; it is emitted before
    /// `rows` because the reader locates the row array by scanning from
    /// the `"rows"` tag to the document's last `]`.
    pub fn to_json(&self) -> String {
        let regressions: Vec<String> =
            fused_regressions(&self.rows).iter().map(Regression::to_json).collect();
        let rows: Vec<String> = self.rows.iter().map(BenchRow::to_json).collect();
        format!(
            "{{\n  \"bench\": \"serve_throughput\",\n  \"regressions\": [\n    {}\n  ],\n  \"rows\": [\n    {}\n  ]\n}}\n",
            regressions.join(",\n    "),
            rows.join(",\n    ")
        )
    }

    /// Parses a document produced by [`BenchArtifact::to_json`]. Returns
    /// `None` when the text lacks the document shape; a **row** that
    /// fails to parse is skipped rather than poisoning the document — a
    /// truncated tail (e.g. a previous writer died mid-save) must not
    /// wipe the rows that survived. The `regressions` block is derived
    /// data and is deliberately not read back.
    pub fn from_json(text: &str) -> Option<Self> {
        let rows_start = text.find("\"rows\"")?;
        let open = text[rows_start..].find('[')? + rows_start;
        // A truncated document may have lost the closing bracket; parse
        // to the end in that case (the incomplete trailing object is
        // dropped by `split_objects`).
        let close = text[open..].rfind(']').map_or(text.len(), |i| i + open);
        let body = &text[open + 1..close];
        let mut rows = Vec::new();
        for obj in split_objects(body) {
            let parsed = (|| {
                Some(BenchRow {
                    mode: field_str(obj, "mode")?,
                    batch: field_num(obj, "batch")? as usize,
                    shards: field_num(obj, "shards")? as usize,
                    steps_per_s: field_num(obj, "steps_per_s")?,
                    // Older artifacts predate the latency column.
                    p99_us: field_num(obj, "p99_us").unwrap_or(0.0),
                    // …and the host fingerprint column.
                    fingerprint: field_str(obj, "fingerprint").unwrap_or_default(),
                })
            })();
            if let Some(row) = parsed {
                rows.push(row);
            }
        }
        Some(BenchArtifact { rows })
    }

    /// Loads from `path`; a missing or unparseable file yields an empty
    /// artifact (the bench will simply rewrite it).
    pub fn load(path: &Path) -> Self {
        std::fs::read_to_string(path)
            .ok()
            .and_then(|text| Self::from_json(&text))
            .unwrap_or_default()
    }

    /// Writes the canonical JSON document to `path` atomically (temp
    /// file + rename in the same directory), so a writer killed mid-save
    /// can never leave a truncated artifact behind.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }
}

/// Scans `rows` for serial/fused mode pairs at the same
/// `{batch, shards, fingerprint}` and returns one [`Regression`] per
/// pair where the fused row is *slower* than its serial twin. Pairing is
/// by mode-name substitution (`serial` → `fused`), so `serial`/`fused`,
/// `serial-i8`/`fused-i8` and `router-serial`/`router-fused` all
/// participate; rows from different hosts never pair. Fused execution
/// exists to raise decode arithmetic intensity; a fused row losing to
/// serial at the same batch means the gather/pack overhead outweighs the
/// GEMM win at that size, which the trajectory should flag rather than
/// silently record.
pub fn fused_regressions(rows: &[BenchRow]) -> Vec<Regression> {
    let mut out = Vec::new();
    for serial in rows.iter().filter(|r| r.mode.contains("serial")) {
        let fused_mode = serial.mode.replace("serial", "fused");
        let Some(fused) = rows.iter().find(|r| {
            r.mode == fused_mode
                && r.batch == serial.batch
                && r.shards == serial.shards
                && r.fingerprint == serial.fingerprint
        }) else {
            continue;
        };
        if fused.steps_per_s < serial.steps_per_s {
            out.push(Regression {
                fused_mode: fused.mode.clone(),
                serial_mode: serial.mode.clone(),
                batch: serial.batch,
                shards: serial.shards,
                fingerprint: serial.fingerprint.clone(),
                fused_steps_per_s: fused.steps_per_s,
                serial_steps_per_s: serial.steps_per_s,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(mode: &str, batch: usize, shards: usize, sps: f64) -> BenchRow {
        BenchRow {
            mode: mode.into(),
            batch,
            shards,
            steps_per_s: sps,
            p99_us: 0.0,
            fingerprint: String::new(),
        }
    }

    #[test]
    fn json_roundtrip_preserves_rows() {
        let mut a = BenchArtifact::new();
        a.upsert(row("serial", 8, 1, 9442.125));
        a.upsert(row("fused", 8, 1, 12486.5));
        a.upsert(row("router-serial", 8, 2, 17000.0));
        a.upsert(BenchRow {
            mode: "mixed-chunked".into(),
            batch: 8,
            shards: 1,
            steps_per_s: 5000.0,
            p99_us: 512.5,
            fingerprint: "linux/x86_64/generic/8t".into(),
        });
        let parsed = BenchArtifact::from_json(&a.to_json()).expect("own output parses");
        assert_eq!(parsed.rows().len(), 4);
        assert_eq!(parsed.rows()[0].mode, "serial");
        assert_eq!(parsed.rows()[2].shards, 2);
        assert!((parsed.rows()[0].steps_per_s - 9442.125).abs() < 1e-9);
        assert!((parsed.rows()[3].p99_us - 512.5).abs() < 1e-9, "latency column round-trips");
        assert_eq!(parsed.rows()[3].fingerprint, "linux/x86_64/generic/8t");
    }

    #[test]
    fn rows_without_latency_or_fingerprint_parse_with_defaults() {
        // Pre-latency-column, pre-fingerprint artifacts must still load.
        let legacy = "{\n  \"bench\": \"serve_throughput\",\n  \"rows\": [\n    \
                      {\"mode\":\"serial\",\"batch\":8,\"shards\":1,\"steps_per_s\":100.000}\n  ]\n}\n";
        let parsed = BenchArtifact::from_json(legacy).expect("legacy shape parses");
        assert_eq!(parsed.rows().len(), 1);
        assert_eq!(parsed.rows()[0].p99_us, 0.0);
        assert_eq!(parsed.rows()[0].fingerprint, "");
    }

    #[test]
    fn upsert_replaces_by_key() {
        let mut a = BenchArtifact::new();
        a.upsert(row("serial", 8, 1, 100.0));
        a.upsert(row("serial", 8, 2, 180.0));
        a.upsert(row("serial", 8, 1, 120.0)); // rerun updates in place
        assert_eq!(a.rows().len(), 2);
        assert!((a.rows()[0].steps_per_s - 120.0).abs() < 1e-9);
        assert_eq!(a.rows_at_shards(2).len(), 1);
        // A different host fingerprint is a different key: coexists.
        let mut other = row("serial", 8, 1, 90.0);
        other.fingerprint = "linux/x86_64/spr/16t".into();
        a.upsert(other);
        assert_eq!(a.rows().len(), 3, "same shape from another host keeps its own row");
    }

    #[test]
    fn truncated_tail_loses_only_the_broken_row() {
        let mut a = BenchArtifact::new();
        a.upsert(row("serial", 1, 1, 10.0));
        a.upsert(row("serial", 2, 1, 20.0));
        let full = a.to_json();
        // Simulate a writer killed mid-save: cut the document inside the
        // last row. The intact rows must survive the reload.
        let cut = full.rfind("\"batch\":2").unwrap();
        let truncated = &full[..cut + 3];
        let recovered = BenchArtifact::from_json(truncated).expect("document shape intact");
        assert_eq!(recovered.rows().len(), 1, "only the broken row is dropped");
        assert_eq!(recovered.rows()[0].batch, 1);
    }

    #[test]
    fn load_tolerates_missing_and_garbage() {
        let dir = std::env::temp_dir().join("pl_bench_artifact_test");
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("nope.json");
        assert!(BenchArtifact::load(&missing).rows().is_empty());
        let garbage = dir.join("garbage.json");
        std::fs::write(&garbage, "not json at all").unwrap();
        assert!(BenchArtifact::load(&garbage).rows().is_empty());
        // Save → load roundtrip through a real file.
        let mut a = BenchArtifact::new();
        a.upsert(row("serial", 4, 1, 55.5));
        let path = dir.join("ok.json");
        a.save(&path).unwrap();
        let back = BenchArtifact::load(&path);
        assert_eq!(back.rows().len(), 1);
        assert_eq!(back.rows()[0].batch, 4);
    }

    #[test]
    fn fused_regressions_flags_only_slower_fused_twins() {
        let rows = vec![
            row("serial", 8, 1, 8102.0),
            row("fused", 8, 1, 6440.0), // slower: must warn
            row("serial", 1, 1, 3000.0),
            row("fused", 1, 1, 3500.0), // faster: silent
            row("serial-i8", 8, 1, 9000.0),
            row("fused-i8", 8, 1, 8000.0), // slower: must warn
            row("router-serial", 16, 2, 100.0),
            // no router-fused twin at shards=2: unpaired rows are skipped
            row("mixed-chunked", 8, 1, 1.0), // non-serial modes never pair
        ];
        let regs = fused_regressions(&rows);
        assert_eq!(regs.len(), 2, "exactly the two slower fused rows warn: {regs:?}");
        assert_eq!(regs[0].fused_mode, "fused");
        assert_eq!(regs[0].serial_mode, "serial");
        assert_eq!((regs[0].batch, regs[0].shards), (8, 1));
        assert!((regs[0].fused_steps_per_s - 6440.0).abs() < 1e-9);
        assert_eq!(regs[1].fused_mode, "fused-i8");
        let line = regs[0].to_string();
        assert!(line.contains("warning:") && line.contains("batch=8"), "line: {line}");
    }

    #[test]
    fn fused_regressions_pair_within_batch_shards_and_fingerprint() {
        // A fused row at a different batch must not pair with this serial row.
        let rows = vec![row("serial", 8, 1, 100.0), row("fused", 4, 1, 50.0)];
        assert!(fused_regressions(&rows).is_empty());
        // Neither may a fused row measured on a different host.
        let mut foreign = row("fused", 8, 1, 50.0);
        foreign.fingerprint = "linux/x86_64/spr/16t".into();
        let rows = vec![row("serial", 8, 1, 100.0), foreign];
        assert!(fused_regressions(&rows).is_empty(), "cross-host pairs are meaningless");
    }

    #[test]
    fn regressions_block_is_emitted_and_does_not_poison_rows() {
        let mut a = BenchArtifact::new();
        a.upsert(row("serial", 8, 1, 100.0));
        a.upsert(row("fused", 8, 1, 50.0)); // regression: block is non-empty
        let text = a.to_json();
        let reg_at = text.find("\"regressions\"").expect("block present");
        let rows_at = text.find("\"rows\"").expect("rows present");
        assert!(reg_at < rows_at, "derived block must precede rows for the reader");
        assert!(text.contains("\"fused_mode\":\"fused\""));
        assert!(text.contains("\"serial_steps_per_s\":100.000"));
        let parsed = BenchArtifact::from_json(&text).expect("parses with block present");
        assert_eq!(parsed.rows().len(), 2, "regression objects are not mistaken for rows");
        assert_eq!(fused_regressions(parsed.rows()).len(), 1, "block re-derives after reload");
    }

    #[test]
    fn compare_reports_deltas_for_shared_keys_only() {
        let mut base = BenchArtifact::new();
        base.upsert(row("serial", 8, 1, 100.0));
        base.upsert(row("fused", 8, 1, 200.0));
        base.upsert(row("retired-mode", 8, 1, 1.0)); // gone in new
        let mut new = BenchArtifact::new();
        new.upsert(row("serial", 8, 1, 110.0));
        new.upsert(row("fused", 8, 1, 150.0));
        new.upsert(row("brand-new", 8, 1, 5.0)); // absent in base
        let deltas = compare(&base, &new);
        assert_eq!(deltas.len(), 2, "unmatched rows on either side are skipped");
        assert!((deltas[0].delta_pct - 10.0).abs() < 1e-9);
        assert!((deltas[1].delta_pct - -25.0).abs() < 1e-9);
        let line = deltas[0].to_string();
        assert!(line.contains("+10.0%") && line.contains("serial"), "line: {line}");
        // Same key, different fingerprint: no match.
        let mut other_host = BenchArtifact::new();
        let mut r = row("serial", 8, 1, 110.0);
        r.fingerprint = "linux/x86_64/spr/16t".into();
        other_host.upsert(r);
        assert!(compare(&base, &other_host).is_empty());
    }

    #[test]
    fn mode_strings_are_escaped() {
        let mut a = BenchArtifact::new();
        a.upsert(row("we\"ird\\mode", 1, 1, 1.0));
        // Braces inside a quoted mode must not break object splitting —
        // a single bad row must never wipe the accumulated trajectory.
        a.upsert(row("router{2}", 2, 2, 2.0));
        let parsed = BenchArtifact::from_json(&a.to_json()).unwrap();
        assert_eq!(parsed.rows().len(), 2);
        assert_eq!(parsed.rows()[0].mode, "we\"ird\\mode");
        assert_eq!(parsed.rows()[1].mode, "router{2}");
        assert_eq!(parsed.rows()[1].shards, 2);
    }
}
