//! The per-shape kernel-timing artifact (`TRACE_shapes.json`).
//!
//! `serve_throughput --trace` folds a traced serving run's
//! `gemm.execute` / `spmm.execute` spans into a [`TraceSummary`] and
//! commits the per-shape stats here — a *measured* timing table keyed by
//! the exact `(m, n, k)` shapes the serving path executes, the seed data
//! a measured-cost autotuner needs (today's `pl-autotuner` ranks loop
//! orders with the analytical model only).

use pl_trace::TraceSummary;

/// File name of the per-shape kernel timing artifact (resolve with
/// [`crate::workspace_path`]).
pub const TRACE_SHAPES_ARTIFACT: &str = "TRACE_shapes.json";

/// Span names that key a kernel shape, with the `(op, dtype)` each one
/// denotes: `args` are `[m, n, k]` for GEMM and `[m, tokens, k]` for SpMM.
/// Plans tag their execute span with the weight dtype (`gemm.execute` is
/// f32, `gemm.i8.execute` the quantized path), so one artifact
/// distinguishes the precisions an identical shape ran at.
const SHAPE_SPANS: [(&str, &str, &str); 3] = [
    ("gemm.execute", "gemm", "f32"),
    ("gemm.i8.execute", "gemm", "i8"),
    ("spmm.execute", "spmm", "f32"),
];

/// Renders the kernel-shape entries of `summary` as the
/// `TRACE_shapes.json` document. Entries come out in `BTreeMap` order
/// (span name, then shape), so regenerating the artifact on an unchanged
/// workload produces a stable diff.
pub fn trace_shapes_json(summary: &TraceSummary) -> String {
    let mut out = String::from("{\n  \"entries\": [\n");
    let mut first = true;
    for ((name, args), stat) in &summary.entries {
        let Some((_, op, dtype)) = SHAPE_SPANS.iter().find(|(n, ..)| n == name) else {
            continue;
        };
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"dtype\": \"{}\", \"m\": {}, \"n\": {}, \"k\": {}, \
             \"count\": {}, \"total_ns\": {}, \"mean_ns\": {:.1}, \"p50_ns\": {}, \
             \"p99_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
            op,
            dtype,
            args[0],
            args[1],
            args[2],
            stat.count,
            stat.total_ns,
            stat.mean_ns(),
            stat.quantile_ns(0.50),
            stat.quantile_ns(0.99),
            stat.min_ns,
            stat.max_ns,
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_trace::{Event, EventKind};

    fn span_pair(name: &'static str, args: [u64; 3], ts: u64, dur: u64) -> [Event; 2] {
        [
            Event { name, kind: EventKind::Begin, lane: 0, ts_ns: ts, dur_ns: 0, args },
            Event { name, kind: EventKind::End, lane: 0, ts_ns: ts + dur, dur_ns: 0, args },
        ]
    }

    #[test]
    fn renders_only_kernel_shape_spans() {
        let mut events = Vec::new();
        events.extend(span_pair("gemm.execute", [256, 8, 256], 0, 1000));
        events.extend(span_pair("gemm.execute", [256, 8, 256], 2000, 3000));
        events.extend(span_pair("spmm.execute", [64, 4, 64], 6000, 500));
        events.extend(span_pair("decode.ffn", [0, 8, 1], 7000, 9000));
        let json = trace_shapes_json(&TraceSummary::from_events(&events));
        assert!(
            json.contains("\"op\": \"gemm\", \"dtype\": \"f32\", \"m\": 256, \"n\": 8, \"k\": 256")
        );
        assert!(json.contains("\"count\": 2, \"total_ns\": 4000"));
        assert!(
            json.contains("\"op\": \"spmm\", \"dtype\": \"f32\", \"m\": 64, \"n\": 4, \"k\": 64")
        );
        assert!(!json.contains("decode.ffn"), "non-kernel spans must not leak in: {json}");
    }

    #[test]
    fn i8_spans_keep_their_dtype_next_to_f32_rows_of_the_same_shape() {
        // The same (m, n, k) shape run at both precisions must come out as
        // two distinguishable rows — dtype is part of the row identity.
        let mut events = Vec::new();
        events.extend(span_pair("gemm.execute", [32, 1, 32], 0, 1000));
        events.extend(span_pair("gemm.i8.execute", [32, 1, 32], 2000, 400));
        let json = trace_shapes_json(&TraceSummary::from_events(&events));
        assert!(json.contains("\"op\": \"gemm\", \"dtype\": \"f32\", \"m\": 32"));
        assert!(json.contains("\"op\": \"gemm\", \"dtype\": \"i8\", \"m\": 32"));
        assert!(!json.contains("gemm.i8"), "span names must not leak into op fields: {json}");
    }

    #[test]
    fn shapes_sort_stably_by_op_then_shape() {
        let mut events = Vec::new();
        events.extend(span_pair("gemm.execute", [512, 1, 256], 0, 10));
        events.extend(span_pair("gemm.execute", [256, 1, 256], 20, 10));
        let json = trace_shapes_json(&TraceSummary::from_events(&events));
        let small = json.find("\"m\": 256").unwrap();
        let large = json.find("\"m\": 512").unwrap();
        assert!(small < large, "entries must come out in shape order: {json}");
    }

    #[test]
    fn empty_summary_renders_empty_entries() {
        let json = trace_shapes_json(&TraceSummary::empty());
        assert!(json.contains("\"entries\": [\n\n  ]"));
    }
}
