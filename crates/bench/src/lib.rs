//! # pl-bench — the evaluation harness
//!
//! One bench target per table and figure of the paper (see `DESIGN.md`
//! §4 for the index). Each harness prints the same rows/series the paper
//! reports, in up to two modes:
//!
//! * **simulated** — the platform performance model of `pl-perfmodel`
//!   parameterized as the paper's machines (SPR / GVT3 / Zen4 / ADL). This
//!   regenerates the cross-platform *shape* of each figure: who wins, by
//!   roughly what factor, where crossovers fall.
//! * **measured** — real kernel executions on the host (small shapes,
//!   host core count), used where measurement is essential (Fig. 6's
//!   model-vs-measured correlation) or as sanity checks.
//!
//! Baselines (oneDNN, TVM-Autoscheduler, Mojo, DeepSparse, HuggingFace,
//! IPEX) are emulated per the substitution table in `DESIGN.md`; the
//! emulation parameters live in [`baseline`].

pub mod artifact;
pub mod baseline;
pub mod driver;
pub mod json;
pub mod trace_artifact;

pub use artifact::{
    compare, fused_regressions, workspace_path, BenchArtifact, BenchRow, Regression, RowDelta,
};
pub use driver::{
    measure_router_steps_per_s, router_mode_name, RouterLoad, RouterMeasurement, ROUTING_OVERHEAD,
    SERVE_ARTIFACT,
};
pub use trace_artifact::{trace_shapes_json, TRACE_SHAPES_ARTIFACT};

use std::time::Instant;

/// Median-of-runs wall time of `f` in seconds.
pub fn time_it(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// GFLOPS from flops and seconds.
pub fn gflops(flops: f64, seconds: f64) -> f64 {
    flops / seconds / 1e9
}

/// Geometric mean.
pub fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Prints a fixed-width table row.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join(" "));
}

/// Prints a header row plus separator.
pub fn header(title: &str, cells: &[&str]) {
    println!("\n=== {title} ===");
    row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!("{}", "-".repeat(cells.len() * 15));
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn time_it_positive() {
        let t = time_it(3, || {
            std::hint::black_box((0..1000).sum::<usize>());
        });
        assert!(t >= 0.0);
    }
}
