//! The shared router measurement driver.
//!
//! Both `benches/serve_throughput.rs` and `examples/router_llm.rs` print
//! measured multi-shard steps/s next to the `ScalingModel` projection and
//! write rows into the same trajectory artifact — so the closed-loop
//! driver, the routing-overhead figure the projection is evaluated at,
//! and the artifact row labels live **here, once**. Two hand-synchronized
//! copies would let the router under test and the printed projection
//! silently drift apart.

use pl_dnn::DecoderModel;
use pl_router::{Router, RouterConfig};
use pl_serve::ServerConfig;
use pl_tensor::{fill_uniform, Xorshift};
use std::sync::Arc;
use std::time::Duration;

/// The routing/aggregation overhead (fraction of one shard-interval per
/// log2 hop) used for **both** the measured router's configuration and
/// the projection printed next to it.
pub const ROUTING_OVERHEAD: f64 = 0.02;

/// File name of the serving trajectory artifact (resolve with
/// [`crate::workspace_path`]).
pub const SERVE_ARTIFACT: &str = "BENCH_serve.json";

/// Canonical artifact row label for a router measurement.
pub fn router_mode_name(fused: bool) -> &'static str {
    if fused {
        "router-fused"
    } else {
        "router-serial"
    }
}

/// One closed-loop router load shape.
#[derive(Debug, Clone, Copy)]
pub struct RouterLoad {
    /// Concurrent client sessions.
    pub sessions: usize,
    /// Decode steps per session.
    pub steps: usize,
    /// Tenants the sessions round-robin over.
    pub tenants: usize,
    /// Per-session KV capacity.
    pub kv_capacity: usize,
    /// Fused or serial batch execution.
    pub fused: bool,
    /// Base seed for the per-session input vectors.
    pub seed: u64,
}

/// What one router drive measured: throughput plus the fleet-wide step
/// latency tail, so artifact rows carry a real p99 instead of 0.
#[derive(Debug, Clone, Copy)]
pub struct RouterMeasurement {
    /// Decode steps/s over the client phase wall time.
    pub steps_per_s: f64,
    /// Fleet-wide p99 step latency (µs), recomputed from the shards'
    /// **merged** latency buckets (`StatsSnapshot::merge`), never from
    /// averaged per-shard quantiles.
    pub p99_us: u64,
}

/// Drives `load` through a router at `shards` shards over
/// `total_threads` (split disjointly) and returns decode steps/s
/// measured over the **client phase wall time only** (the stats
/// snapshot's own `tokens_per_s` clock starts at server construction, so
/// it would charge higher shard counts for building more pools — a
/// systematic anti-scaling bias on short runs), along with the merged
/// p99 step latency. Each shard's `max_batch` is sized to its share of
/// the sessions — a shard holding `sessions / shards` streams can never
/// fill a fleet-wide batch and would otherwise pay the full coalesce
/// linger on every batch, skewing the scaling comparison.
pub fn measure_router_steps_per_s(
    model: &Arc<DecoderModel>,
    shards: usize,
    total_threads: usize,
    load: &RouterLoad,
) -> RouterMeasurement {
    let mut router = Router::new(
        Arc::clone(model),
        RouterConfig {
            shards,
            total_threads,
            routing_overhead: ROUTING_OVERHEAD,
            server: ServerConfig {
                tenants: load.tenants,
                max_batch: load.sessions.div_ceil(shards).min(load.sessions),
                kv_capacity: load.kv_capacity,
                coalesce_wait: Duration::from_micros(500),
                fused: load.fused,
                ..Default::default()
            },
        },
    )
    .expect("router config");
    router.start();
    let hidden = model.config().hidden;
    let t0 = std::time::Instant::now();
    std::thread::scope(|scope| {
        for s in 0..load.sessions {
            let router = &router;
            scope.spawn(move || {
                let id = router.create_session(s % load.tenants).unwrap();
                let mut x = vec![0.0f32; hidden];
                fill_uniform(&mut x, &mut Xorshift::new(load.seed + s as u64), -0.5, 0.5);
                for _ in 0..load.steps {
                    x = router.step(id, &x).unwrap();
                }
                router.close_session(id).unwrap();
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let fleet = router.stats();
    router.shutdown();
    assert_eq!(fleet.completed, (load.sessions * load.steps) as u64, "driver lost steps");
    RouterMeasurement {
        steps_per_s: fleet.completed as f64 / elapsed.max(1e-9),
        p99_us: fleet.p99_us,
    }
}
