//! Minimal hand-rolled JSON field extraction.
//!
//! This environment has no serialization crates, so every artifact in the
//! workspace writes one canonical JSON shape by hand and reads it back
//! with these scanners. They are **not** a general JSON parser: they find
//! a named field in one object's text and slice its value out, tolerating
//! unknown fields (forward compatibility) and absent ones (legacy
//! artifacts). Public so integration tests can round-trip other crates'
//! hand-rolled writers (e.g. `pl_serve::StatsSnapshot::to_json`) through
//! the same reader the bench artifact trusts.

/// Splits `body` into the interiors of its top-level `{...}` objects,
/// string-aware: braces inside quoted values (e.g. a mode named
/// `"router{2}"`) do not terminate an object.
pub fn split_objects(body: &str) -> Vec<&str> {
    let mut objects = Vec::new();
    let mut start = None;
    let mut in_string = false;
    let mut escaped = false;
    let mut depth = 0usize;
    for (i, c) in body.char_indices() {
        if in_string {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    start = Some(i + 1);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(s) = start.take() {
                        objects.push(&body[s..i]);
                    }
                }
            }
            _ => {}
        }
    }
    objects
}

/// The string value of field `name` in `obj` (one object's interior
/// text), unescaped. `None` when absent or not a string.
pub fn field_str(obj: &str, name: &str) -> Option<String> {
    let tag = format!("\"{name}\"");
    let at = obj.find(&tag)? + tag.len();
    let rest = obj[at..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    // Scan to the first *unescaped* quote, unescaping as we go.
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
}

/// The numeric value of field `name` in `obj`. `None` when absent or
/// unparseable.
pub fn field_num(obj: &str, name: &str) -> Option<f64> {
    let tag = format!("\"{name}\"");
    let at = obj.find(&tag)? + tag.len();
    let rest = obj[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The raw `[...]` text (brackets included) of array field `name` in
/// `obj`, bracket-balanced and string-aware — nested arrays like
/// `[[2,1],[3,1]]` come back whole. `None` when absent or not an array.
pub fn field_array<'a>(obj: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\"");
    let at = obj.find(&tag)? + tag.len();
    let rest = obj[at..].trim_start().strip_prefix(':')?.trim_start();
    if !rest.starts_with('[') {
        return None;
    }
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if in_string {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Every number in `text`, in order — the companion to [`field_array`]
/// for numeric arrays (nested structure is flattened; `[[2,1],[3,1]]`
/// yields `[2, 1, 3, 1]`).
pub fn numbers(text: &str) -> Vec<f64> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_digit() || c == '-' {
            let start = i;
            i += 1;
            while i < bytes.len() {
                let c = bytes[i] as char;
                if c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+' {
                    i += 1;
                } else {
                    break;
                }
            }
            if let Ok(v) = text[start..i].parse() {
                out.push(v);
            }
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_parse_and_tolerate_absence() {
        let obj = "\"mode\":\"fu\\\"sed\",\"batch\":8,\"steps_per_s\":123.5,\"neg\":-2e3";
        assert_eq!(field_str(obj, "mode").unwrap(), "fu\"sed");
        assert_eq!(field_num(obj, "batch"), Some(8.0));
        assert_eq!(field_num(obj, "steps_per_s"), Some(123.5));
        assert_eq!(field_num(obj, "neg"), Some(-2000.0));
        assert_eq!(field_str(obj, "missing"), None);
        assert_eq!(field_num(obj, "missing"), None);
        assert_eq!(field_num(obj, "mode"), None, "string is not a number");
    }

    #[test]
    fn arrays_slice_out_balanced_and_nested() {
        let obj = "\"buckets\":[0,3,1],\"dist\":[[2,1],[3,1]],\"modes\":[\"a]b\"],\"x\":1";
        assert_eq!(field_array(obj, "buckets"), Some("[0,3,1]"));
        assert_eq!(field_array(obj, "dist"), Some("[[2,1],[3,1]]"));
        assert_eq!(field_array(obj, "modes"), Some("[\"a]b\"]"), "brackets in strings ignored");
        assert_eq!(field_array(obj, "x"), None, "scalar is not an array");
        assert_eq!(numbers(field_array(obj, "dist").unwrap()), vec![2.0, 1.0, 3.0, 1.0]);
    }

    #[test]
    fn split_objects_handles_nesting_and_strings() {
        let body = "{\"a\":1},{\"mode\":\"router{2}\"},{\"nested\":{\"x\":2}}";
        let objs = split_objects(body);
        assert_eq!(objs.len(), 3);
        assert!(objs[1].contains("router{2}"));
        assert!(objs[2].contains("\"x\":2"), "nested object stays inside its parent");
    }

    /// `pl_serve::StatsSnapshot::to_json` is a hand-rolled writer and
    /// these scanners are the hand-rolled reader its consumers (the
    /// bench artifact, scrapers) rely on. Round-trip a snapshot with
    /// every field set to a distinctive value and assert nothing is
    /// lost or misattributed — in particular that prefix-sharing names
    /// (`batches`/`decode_batches`, `prefills`/`prefill_chunks`,
    /// `p50_us`/`queue_wait_p50_us`) never alias.
    #[test]
    fn stats_snapshot_json_roundtrips_through_these_scanners() {
        let mut s = pl_serve::StatsSnapshot::empty();
        s.elapsed_s = 1.5;
        s.submitted = 101;
        s.completed = 102;
        s.rejected_backpressure = 103;
        s.rejected_sessions = 104;
        s.batches = 105;
        s.decode_batches = 106;
        s.prefills = 107;
        s.prefill_chunks = 108;
        s.mixed_batches = 109;
        s.fused_batches = 110;
        s.fused_gemm_shapes = vec![((2, 64, 64), 7), ((4, 64, 64), 9)];
        s.tokens_per_s = 123.456;
        s.mean_batch = 3.25;
        s.max_batch_observed = 111;
        s.batch_distribution = vec![(2, 40), (4, 60)];
        s.latency_buckets[3] = 5;
        s.p50_us = 112;
        s.p99_us = 113;
        s.mean_us = 42.5;
        s.queue_wait_buckets[4] = 6;
        s.queue_wait_p50_us = 114;
        s.queue_wait_p99_us = 115;
        s.execute_buckets[5] = 7;
        s.execute_p50_us = 116;
        s.execute_p99_us = 117;
        s.chunk_latency_buckets[6] = 8;
        s.chunk_p50_us = 118;
        s.chunk_p99_us = 119;

        let text = s.to_json();
        let objs = split_objects(&text);
        assert_eq!(objs.len(), 1, "one flat top-level object");
        let obj = objs[0];

        assert_eq!(field_num(obj, "elapsed_s"), Some(1.5));
        // Every plain counter/scalar: (name, expected) table so a field
        // added to the writer without reader coverage fails loudly here
        // when this list is extended.
        let scalars: &[(&str, f64)] = &[
            ("submitted", 101.0),
            ("completed", 102.0),
            ("rejected_backpressure", 103.0),
            ("rejected_sessions", 104.0),
            ("batches", 105.0),
            ("decode_batches", 106.0),
            ("prefills", 107.0),
            ("prefill_chunks", 108.0),
            ("mixed_batches", 109.0),
            ("fused_batches", 110.0),
            ("tokens_per_s", 123.456),
            ("mean_batch", 3.25),
            ("max_batch_observed", 111.0),
            ("p50_us", 112.0),
            ("p99_us", 113.0),
            ("mean_us", 42.5),
            ("queue_wait_p50_us", 114.0),
            ("queue_wait_p99_us", 115.0),
            ("execute_p50_us", 116.0),
            ("execute_p99_us", 117.0),
            ("chunk_p50_us", 118.0),
            ("chunk_p99_us", 119.0),
        ];
        for &(name, want) in scalars {
            assert_eq!(field_num(obj, name), Some(want), "field {name}");
        }

        // Histogram arrays: full bucket vectors survive, with counts in
        // the right slots (an off-by-one in bucket order would corrupt
        // merged quantiles downstream).
        let lat = numbers(field_array(obj, "latency_buckets").unwrap());
        assert_eq!(lat.len(), s.latency_buckets.len());
        assert_eq!(lat[3], 5.0);
        assert_eq!(lat.iter().sum::<f64>(), 5.0);
        let qw = numbers(field_array(obj, "queue_wait_buckets").unwrap());
        assert_eq!((qw.len(), qw[4]), (s.queue_wait_buckets.len(), 6.0));
        let ex = numbers(field_array(obj, "execute_buckets").unwrap());
        assert_eq!((ex.len(), ex[5]), (s.execute_buckets.len(), 7.0));
        let ch = numbers(field_array(obj, "chunk_latency_buckets").unwrap());
        assert_eq!((ch.len(), ch[6]), (s.chunk_latency_buckets.len(), 8.0));

        // Paired histograms: `[[key, count], ...]` and `[[m,n,k], count]`.
        let dist = numbers(field_array(obj, "batch_distribution").unwrap());
        assert_eq!(dist, vec![2.0, 40.0, 4.0, 60.0]);
        let shapes = numbers(field_array(obj, "fused_gemm_shapes").unwrap());
        assert_eq!(shapes, vec![2.0, 64.0, 64.0, 7.0, 4.0, 64.0, 64.0, 9.0]);

        // Merged-then-rendered stays readable too (merge is the router's
        // aggregation path; its output feeds the same scrapers).
        let mut merged = pl_serve::StatsSnapshot::empty();
        merged.merge(&s);
        merged.merge(&s);
        let mtext = merged.to_json();
        let mobjs = split_objects(&mtext);
        assert_eq!(field_num(mobjs[0], "completed"), Some(204.0));
        let mlat = numbers(field_array(mobjs[0], "latency_buckets").unwrap());
        assert_eq!(mlat[3], 10.0, "merged buckets double");
    }
}
