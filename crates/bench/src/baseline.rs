//! Baseline emulations (see DESIGN.md substitution table).
//!
//! Every comparator of the paper's evaluation is closed-source or
//! unavailable in this environment, so each is re-expressed through the
//! same performance model with the *characteristics the paper attributes
//! to it*: oneDNN's flat-B layout and fixed heuristics, TVM's deeper
//! search space without low-precision codegen, Mojo's static
//! tiling/parallelization hints, DeepSparse's element-wise unstructured
//! sparsity, HuggingFace/IPEX's unfused padded execution.

use pl_autotuner::{tune_gemm_modeled, Constraints, GemmProblem};
use pl_perfmodel::{GemmModelSpec, Platform};
use pl_tensor::DType;

/// Model-space block size: the largest divisor of `d` up to 256. Coarser
/// slices keep the trace simulation cheap for 4096-scale problems without
/// changing who wins (both sides use the same granularity).
pub fn model_block(d: usize) -> usize {
    for cand in [256, 192, 128, 96, 64, 48, 32, 16, 8, 4, 2, 1] {
        if d.is_multiple_of(cand) {
            return cand;
        }
    }
    1
}

/// Candidate budget scaled to problem size (trace cost grows cubically).
fn candidate_budget(m: usize, n: usize, k: usize) -> usize {
    match m.max(n).max(k) {
        0..=1024 => 48,
        1025..=2048 => 16,
        _ => 8,
    }
}

/// PARLOOPER: best modeled schedule from the §II-D candidate space, with
/// the batch reduction fully folded.
pub fn parlooper_gemm_gflops(
    platform: &Platform,
    threads: usize,
    m: usize,
    n: usize,
    k: usize,
    dtype: DType,
) -> f64 {
    let (bm, bn, bk) = (model_block(m), model_block(n), model_block(k));
    let problem = GemmProblem { m, n, k, bm, bn, bk, dtype };
    let constraints = Constraints::gemm(1, 2, 2, candidate_budget(m, n, k));
    let tuned = tune_gemm_modeled(&problem, &constraints, platform, threads);
    // Also consider folding all K blocks into one BRGEMM (k_step = Kb),
    // which the generator's k_step=1 candidates miss.
    let folded = GemmModelSpec {
        m,
        n,
        k,
        bm,
        bn,
        bk,
        k_step: k / bk,
        spec: "BCa".into(),
        blocks: [vec![], vec![], vec![]],
        dtype,
    }
    .predict(platform, threads)
    .map(|p| p.gflops)
    .unwrap_or(0.0);
    tuned.best.score.max(folded)
}

/// oneDNN-like: blocked A but *flat* B (the paper attributes oneDNN's
/// large-leading-dimension glass jaw to the non-blocked B layout) and one
/// fixed heuristic schedule for every shape.
pub fn onednn_gemm_gflops(
    platform: &Platform,
    threads: usize,
    m: usize,
    n: usize,
    k: usize,
    dtype: DType,
) -> f64 {
    let (bm, bn) = (model_block(m), model_block(n));
    // Flat B: the whole K-extent of a column panel is one slice (bk = k),
    // so B panels stream through the hierarchy instead of tiling into it.
    let spec = GemmModelSpec {
        m,
        n,
        k,
        bm,
        bn,
        bk: k,
        k_step: 1,
        spec: "BCa".into(),
        blocks: [vec![], vec![], vec![]],
        dtype,
    };
    spec.predict(platform, threads).map(|p| p.gflops).unwrap_or(0.0)
}

/// TVM-Autoscheduler-like: searches a far deeper space (down to register
/// blocking), emulated as (i) final performance from a restricted outer
/// space without batch-reduce folding, (ii) **no low-precision codegen**
/// (the paper: TVM "generated slow replacement instruction sequences" for
/// BF16 — modeled as FP32 execution), (iii) per-candidate costs dominated
/// by compilation.
pub fn tvm_gemm_gflops(
    platform: &Platform,
    threads: usize,
    m: usize,
    n: usize,
    k: usize,
    dtype: DType,
) -> f64 {
    let eff_dtype = DType::F32; // no usable BF16 path
    let _ = dtype;
    let problem = GemmProblem {
        m,
        n,
        k,
        bm: model_block(m),
        bn: model_block(n),
        bk: model_block(k),
        dtype: eff_dtype,
    };
    // No multi-level cache blocking in the candidate set (TVM spends its
    // budget on the microkernel dimensions our TPP backend already owns).
    let constraints = Constraints::gemm(0, 0, 0, candidate_budget(m, n, k).min(12));
    let tuned = tune_gemm_modeled(&problem, &constraints, platform, threads);
    tuned.best.score
}

/// Autotuning wall-clock estimate: `candidates x per-candidate seconds`.
/// PARLOOPER candidates cost a kernel run (JIT cached); TVM candidates pay
/// compilation + measurement (paper: 1000 schedules in 17-50 min).
pub fn autotune_seconds(candidates: usize, per_candidate_s: f64) -> f64 {
    candidates as f64 * per_candidate_s
}

/// Mojo-like: one static tiling + parallelization for every shape
/// (the blog's hand-set hints), no per-shape schedule search, no batch
/// reduce.
pub fn mojo_gemm_gflops(platform: &Platform, threads: usize, m: usize, n: usize, k: usize) -> f64 {
    let spec = GemmModelSpec {
        m,
        n,
        k,
        bm: model_block(m),
        bn: model_block(n),
        bk: model_block(k),
        k_step: 1,
        spec: "CBa".into(), // fixed order, single-loop parallelism
        blocks: [vec![], vec![], vec![]],
        dtype: DType::F32,
    };
    spec.predict(platform, threads).map(|p| p.gflops).unwrap_or(0.0)
}

/// DeepSparse-like unstructured sparse inference: element-wise sparsity
/// cannot use register-blocked microkernels; effective element efficiency
/// relative to a dense FP32 kernel (paper Fig. 10 right: ours is 1.56x
/// faster at equal sparsity/F1).
pub const DEEPSPARSE_ELEMENT_EFFICIENCY: f64 = 0.45;

/// Fraction of a transformer layer that is *not* weight contractions
/// (softmax/layernorm/bias/dropout) — the part sparsity cannot speed up;
/// used for Fig. 10's roofline exactly as the paper builds it.
pub const BERT_NON_CONTRACTION_FRACTION: f64 = 0.12;

/// End-to-end efficiency factors for the transformer stacks (Fig. 9/11):
/// fraction of GEMM-peak each software stack sustains, encoding what the
/// paper attributes to each (padding waste, missing fusion, fixed loop
/// orders).
pub mod stack_eff {
    /// HuggingFace eager FP32 (padded, unfused).
    pub const HF: f64 = 0.22;
    /// IPEX + oneDNN (fused ops, padded tensors).
    pub const IPEX: f64 = 0.45;
    /// TPP with fixed loop orders (prior work [12], unpadded + fused).
    pub const TPP_FIXED: f64 = 0.62;
    /// PARLOOPER-tuned TPP (this work): +22% over fixed loops on SPR.
    pub const PARLOOPER: f64 = 0.76;
    /// Padding waste factor of padded stacks (SQuAD: ~2x tokens).
    pub const PAD_WASTE: f64 = 2.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parlooper_beats_or_matches_onednn() {
        let p = Platform::spr();
        for &(m, n, k) in &[(512, 512, 512), (1024, 1024, 1024)] {
            let ours = parlooper_gemm_gflops(&p, 56, m, n, k, DType::F32);
            let theirs = onednn_gemm_gflops(&p, 56, m, n, k, DType::F32);
            assert!(ours >= 0.95 * theirs, "{m}: {ours} vs {theirs}");
        }
    }

    #[test]
    fn tvm_has_no_bf16_path() {
        let p = Platform::spr();
        let tvm_bf16 = tvm_gemm_gflops(&p, 56, 512, 512, 512, DType::Bf16);
        let ours_bf16 = parlooper_gemm_gflops(&p, 56, 512, 512, 512, DType::Bf16);
        assert!(ours_bf16 > 1.5 * tvm_bf16, "{ours_bf16} vs {tvm_bf16}");
    }

    #[test]
    fn autotune_cost_model() {
        // PARLOOPER: ~1000 configs at ~100ms; TVM: 1000 at ~1.5s+.
        let ours = autotune_seconds(1000, 0.1);
        let tvm = autotune_seconds(1000, 1.5);
        assert!(tvm / ours > 10.0);
    }
}
