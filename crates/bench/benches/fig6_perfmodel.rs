//! Figure 6: performance-model validation — modeled vs measured GFLOPS
//! across loop_spec_strings on the *host* machine.
//!
//! Paper shape: the model captures the trends; the top-5 modeled schedules
//! always contain the most performant measured instantiation.

use pl_autotuner::{blocks_for_spec, generate, Constraints, GemmProblem};
use pl_bench::{f1, header, row};
use pl_kernels::{Gemm, GemmShape, GemmTuning};
use pl_perfmodel::{GemmModelSpec, Platform};
use pl_runtime::global_pool;
use pl_tensor::{fill_uniform, BlockedMatrix, DType, Xorshift};

fn main() {
    let pool = global_pool();
    let threads = pool.nthreads();
    let host = Platform::generic_host(threads);

    for &(m, n, k) in &[(256usize, 256usize, 256usize), (512, 128, 256)] {
        let shape = GemmShape::with_default_blocks(m, n, k);
        let problem =
            GemmProblem { m, n, k, bm: shape.bm, bn: shape.bn, bk: shape.bk, dtype: DType::F32 };

        // Candidate schedules (parallel-only to keep measurement
        // meaningful on the host team).
        let specs: Vec<String> = generate(3, &Constraints::gemm(1, 1, 1, 400))
            .into_iter()
            .filter(|s| s.chars().any(|c| c.is_ascii_uppercase()))
            .take(16)
            .collect();

        // Data.
        let mut rng = Xorshift::new(7);
        let mut a_cm = vec![0.0f32; m * k];
        let mut b_cm = vec![0.0f32; k * n];
        fill_uniform(&mut a_cm, &mut rng, -0.5, 0.5);
        fill_uniform(&mut b_cm, &mut rng, -0.5, 0.5);
        let mut a = BlockedMatrix::<f32>::a_layout(m, k, shape.bm, shape.bk).unwrap();
        a.pack_from_colmajor(&a_cm);
        let mut b = BlockedMatrix::<f32>::b_layout(k, n, shape.bk, shape.bn).unwrap();
        b.pack_from_colmajor(&b_cm);

        header(
            &format!("Fig.6 model vs measured, {m}x{n}x{k} on host ({threads} threads)"),
            &["spec", "measured GF", "modeled GF"],
        );
        let mut measured: Vec<(String, f64)> = Vec::new();
        let mut modeled: Vec<(String, f64)> = Vec::new();
        for spec in &specs {
            let Some(blocks) = blocks_for_spec(&problem, spec) else { continue };
            let tuning = GemmTuning {
                spec: spec.clone(),
                k_step: 1,
                a_blocks: blocks[0].clone(),
                b_blocks: blocks[1].clone(),
                c_blocks: blocks[2].clone(),
            };
            let Ok(kernel) = Gemm::<f32, f32, f32>::new(shape, tuning) else { continue };
            let mut c = BlockedMatrix::<f32>::c_layout(m, n, shape.bm, shape.bn).unwrap();
            let t = pl_bench::time_it(3, || kernel.execute(&a, &b, &mut c, pool).unwrap());
            let meas = pl_bench::gflops(shape.flops() as f64, t);

            let model = GemmModelSpec {
                m,
                n,
                k,
                bm: shape.bm,
                bn: shape.bn,
                bk: shape.bk,
                k_step: 1,
                spec: spec.clone(),
                blocks,
                dtype: DType::F32,
            };
            let pred = model.predict(&host, threads).map(|p| p.gflops).unwrap_or(0.0);
            row(&[spec.clone(), f1(meas), f1(pred)]);
            measured.push((spec.clone(), meas));
            modeled.push((spec.clone(), pred));
        }

        // Top-5 check.
        measured.sort_by(|x, y| y.1.total_cmp(&x.1));
        modeled.sort_by(|x, y| y.1.total_cmp(&x.1));
        let best_measured = &measured[0].0;
        let top5: Vec<&String> = modeled.iter().take(5).map(|(s, _)| s).collect();
        let hit = top5.contains(&best_measured);
        println!("\nBest measured: {best_measured}; top-5 modeled: {:?}; contained: {hit}", top5);
    }
}
