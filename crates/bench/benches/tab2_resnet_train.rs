//! Table II: ResNet-50 BF16 training throughput (images/sec), single
//! socket.
//!
//! Paper: SPR 255 img/s (PARLOOPER+TPP) vs 265 (IPEX+oneDNN, within 4 %);
//! GVT3 145 img/s (within 1.76x of SPR).

use pl_bench::{f1, header, row};
use pl_dnn::{resnet50_conv_shapes, ConvLayerSpec};
use pl_perfmodel::{roofline, Platform, WorkItem};
use pl_tensor::DType;

fn train_images_per_sec(p: &Platform, eff: f64) -> f64 {
    let threads = p.total_cores();
    let mb = threads; // paper: minibatch = cores
    let shapes: Vec<ConvLayerSpec> = resnet50_conv_shapes(mb, 64, 64);
    // fwd + bwd-data + bwd-weights ~ 3x forward conv work; batchnorm and
    // pooling add a bandwidth-bound tail (~15 % of time, folded in below).
    let mut total = 0.0;
    for l in &shapes {
        let s = &l.shape;
        let flops = 3.0 * s.flops() as f64 * l.count as f64;
        let act_bytes =
            (s.n * s.c * s.h * s.w + s.n * s.k * s.p() * s.q()) as f64 * 2.0 * 3.0 * l.count as f64;
        let w_bytes = (s.c * s.k * s.r * s.s) as f64 * 2.0 * 3.0 * l.count as f64;
        total += roofline::time_seconds(
            p,
            threads,
            DType::Bf16,
            WorkItem { flops, bytes: act_bytes + w_bytes },
            eff,
        );
    }
    let total_with_bn = total / 0.85;
    mb as f64 / total_with_bn
}

fn main() {
    header(
        "Table II: ResNet-50 BF16 training, images/sec [simulated]",
        &["system", "implementation", "img/s"],
    );
    let spr = train_images_per_sec(&Platform::spr(), 0.62);
    let spr_ipex = train_images_per_sec(&Platform::spr(), 0.645); // within 4%
    let gvt3 = train_images_per_sec(&Platform::gvt3(), 0.80);
    row(&["SPR".into(), "PARLOOPER + TPP".into(), f1(spr)]);
    row(&["SPR".into(), "IPEX + oneDNN".into(), f1(spr_ipex)]);
    row(&["GVT3".into(), "PARLOOPER + TPP".into(), f1(gvt3)]);
    println!(
        "\nSPR within {:.1}% of IPEX (paper: 4%); SPR/GVT3 = {:.2}x (paper: 1.76x)",
        100.0 * (spr_ipex - spr) / spr_ipex,
        spr / gvt3
    );

    // Measured host: one fwd+bwd of a small conv through the real kernels.
    use pl_kernels::{conv_backward_data, conv_backward_weights, ConvForward, ConvTuning};
    use pl_runtime::global_pool;
    use pl_tensor::{ActTensor, ConvShape, ConvWeights};
    let pool = global_pool();
    let shape = ConvShape {
        n: 2,
        c: 32,
        k: 32,
        h: 14,
        w: 14,
        r: 3,
        s: 3,
        stride: 1,
        pad: 1,
        bc: 16,
        bk: 16,
    };
    let conv = ConvForward::<f32>::new(shape, ConvTuning::default_for(&shape)).unwrap();
    let input =
        ActTensor::<f32>::new(shape.n, shape.c, shape.h, shape.w, shape.bc, shape.pad).unwrap();
    let weights =
        ConvWeights::<f32>::new(shape.c, shape.k, shape.r, shape.s, shape.bc, shape.bk).unwrap();
    let mut out =
        ActTensor::<f32>::new(shape.n, shape.k, shape.p(), shape.q(), shape.bk, 0).unwrap();
    let mut din =
        ActTensor::<f32>::new(shape.n, shape.c, shape.h, shape.w, shape.bc, shape.pad).unwrap();
    let mut dw =
        ConvWeights::<f32>::new(shape.c, shape.k, shape.r, shape.s, shape.bc, shape.bk).unwrap();
    let t = pl_bench::time_it(3, || {
        conv.execute(&input, &weights, &mut out, pool).unwrap();
        conv_backward_data(&shape, &out, &weights, &mut din, pool).unwrap();
        conv_backward_weights(&shape, &input, &out, &mut dw, pool).unwrap();
    });
    header("Table II measured host (one conv fwd+bwd)", &["conv", "ms"]);
    row(&["3x3 32->32 @14x14 n=2".into(), format!("{:.2}", t * 1e3)]);
}
