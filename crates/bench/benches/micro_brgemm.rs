//! Criterion micro-benchmarks of the BRGEMM TPP microkernels.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pl_tensor::{Bf16, Xorshift};
use pl_tpp::brgemm::{Brgemm, BrgemmDesc};
use std::hint::black_box;

fn bench_brgemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("brgemm");
    g.sample_size(20);
    for &(m, n, k, br) in &[(32usize, 32usize, 32usize, 1usize), (64, 64, 64, 4)] {
        let flops = 2 * m * n * k * br;
        g.throughput(Throughput::Elements(flops as u64));
        let mut rng = Xorshift::new(1);
        let a: Vec<f32> = (0..m * k * br).map(|_| rng.next_f32()).collect();
        let b: Vec<f32> = (0..k * n * br).map(|_| rng.next_f32()).collect();
        let mut cbuf = vec![0.0f32; m * n];
        let kernel = Brgemm::<f32, f32, f32>::new(BrgemmDesc::blocked(m, n, k));
        g.bench_function(format!("f32_{m}x{n}x{k}_br{br}"), |bench| {
            bench.iter(|| {
                kernel.execute_stride(black_box(&a), m * k, black_box(&b), k * n, &mut cbuf, br);
            })
        });

        let ab: Vec<Bf16> = a.iter().map(|&v| Bf16::from(v)).collect();
        let bb: Vec<Bf16> = b.iter().map(|&v| Bf16::from(v)).collect();
        let kernel_bf = Brgemm::<Bf16, Bf16, f32>::new(BrgemmDesc::blocked(m, n, k));
        g.bench_function(format!("bf16_{m}x{n}x{k}_br{br}"), |bench| {
            bench.iter(|| {
                kernel_bf.execute_stride(
                    black_box(&ab),
                    m * k,
                    black_box(&bb),
                    k * n,
                    &mut cbuf,
                    br,
                );
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_brgemm);
criterion_main!(benches);
