//! Figure 7: ResNet-50 convolution shapes (IDs 2-20) on SPR / GVT3 / Zen4
//! (BF16, MB = cores) and ADL (FP32, MB = 1) — PARLOOPER vs oneDNN-like.
//!
//! Paper shape: PARLOOPER matches/exceeds oneDNN on every platform;
//! geomeans 1.16x (SPR), 1.75x (GVT3, where the oneDNN/ACL integration
//! runs an FP32 front-end), 1.12x (Zen4), 1.14x (ADL with dynamic
//! scheduling over P+E cores).

use pl_bench::{f1, f2, geomean, header, row};
use pl_dnn::resnet50_conv_shapes;
use pl_perfmodel::{ConvModelSpec, Platform};
use pl_tensor::DType;

fn conv_gflops(p: &Platform, threads: usize, spec: &ConvModelSpec) -> f64 {
    spec.predict(p, threads).map(|pr| pr.gflops).unwrap_or(0.0)
}

fn main() {
    let platforms: [(Platform, DType, &str); 4] = [
        (Platform::spr(), DType::Bf16, "BF16, MB=56"),
        (Platform::gvt3(), DType::Bf16, "BF16, MB=64"),
        (Platform::zen4(), DType::Bf16, "BF16, MB=16"),
        (Platform::adl(), DType::F32, "FP32, MB=1"),
    ];
    for (platform, dtype, label) in platforms {
        let threads = platform.total_cores();
        let mb = if platform.name == "ADL" { 1 } else { threads };
        let shapes = resnet50_conv_shapes(mb, 64, 64);
        header(
            &format!("Fig.7 ResNet-50 convs on {} ({label}) [simulated]", platform.name),
            &["ID", "PARLOOPER", "oneDNN", "speedup"],
        );
        let mut speedups = Vec::new();
        for l in shapes.iter().skip(1) {
            // IDs 2-20 as in the figure.
            let s = &l.shape;
            let ours = ConvModelSpec {
                n: s.n,
                c: s.c,
                k: s.k,
                hw: s.h,
                rs: s.r,
                stride: s.stride,
                pad: s.pad,
                bc: s.bc,
                bk: s.bk,
                w_step: s.q(),
                spec: "ACDbefg".into(),
                dtype,
            };
            // oneDNN-like: fixed heuristic with narrow Q tiles (poorer
            // BRGEMM amortization); on GVT3 the ACL integration runs the
            // FP32 front-end (paper §V-A4).
            let base_dtype = if platform.name == "GVT3" { DType::F32 } else { dtype };
            let w_step_b = pick_divisor(s.q(), 4);
            let base = ConvModelSpec {
                w_step: w_step_b,
                spec: "ACDbefg".into(),
                dtype: base_dtype,
                ..ours.clone()
            };
            let g_ours = conv_gflops(&platform, threads, &ours);
            let g_base = conv_gflops(&platform, threads, &base);
            speedups.push(g_ours / g_base);
            row(&[
                format!("{}", l.id),
                f1(g_ours),
                f1(g_base),
                format!("{}x", f2(g_ours / g_base)),
            ]);
        }
        println!("Geomean speedup on {}: {}x", platform.name, f2(geomean(&speedups)));
    }

    // Measured host sanity: one small conv through the real kernel.
    use pl_kernels::{ConvForward, ConvTuning};
    use pl_runtime::global_pool;
    use pl_tensor::{ActTensor, ConvShape, ConvWeights};
    let pool = global_pool();
    let shape = ConvShape {
        n: 2,
        c: 32,
        k: 32,
        h: 14,
        w: 14,
        r: 3,
        s: 3,
        stride: 1,
        pad: 1,
        bc: 16,
        bk: 16,
    };
    let conv = ConvForward::<f32>::new(shape, ConvTuning::default_for(&shape)).unwrap();
    let input =
        ActTensor::<f32>::new(shape.n, shape.c, shape.h, shape.w, shape.bc, shape.pad).unwrap();
    let weights =
        ConvWeights::<f32>::new(shape.c, shape.k, shape.r, shape.s, shape.bc, shape.bk).unwrap();
    let mut out =
        ActTensor::<f32>::new(shape.n, shape.k, shape.p(), shape.q(), shape.bk, 0).unwrap();
    let t = pl_bench::time_it(5, || conv.execute(&input, &weights, &mut out, pool).unwrap());
    header("Fig.7 measured host sanity", &["conv", "GFLOPS"]);
    row(&["3x3 32->32 @14x14".into(), f1(pl_bench::gflops(shape.flops() as f64, t))]);
}

fn pick_divisor(q: usize, pref: usize) -> usize {
    let mut d = pref.min(q);
    while !q.is_multiple_of(d) {
        d -= 1;
    }
    d.max(1)
}
