//! Serving throughput: the pl-serve dynamic batcher vs unbatched decode,
//! serial vs fused batch execution.
//!
//! N closed-loop client sessions decode through the server at several
//! `max_batch` settings (1 disables coalescing — every step is its own
//! parallel region), in both batch-execution modes: **serial** (each
//! session's step runs whole inside the region; B `hidden x 1` GEMVs per
//! layer) and **fused** (`ServerConfig::fused`: one `hidden x B` GEMM per
//! layer projection). Reported: decode steps/s, mean executed batch,
//! p50/p99 queue-to-reply latency. The batched rows amortize region
//! broadcasts (PAR-MODE dynamic scheduling at the request level); the
//! fused rows additionally raise decode arithmetic intensity from O(1)
//! to O(B) — the throughput lever the paper's BRGEMM design exists for,
//! which is where the fused-over-serial headroom at B >= 4 comes from.

use pl_bench::{
    f1, f2, header, measure_router_steps_per_s, router_mode_name, row, time_it, BenchArtifact,
    BenchRow, RouterLoad, ROUTING_OVERHEAD, SERVE_ARTIFACT,
};
use pl_dnn::matmul::{matmul, Trans};
use pl_dnn::{DecoderConfig, DecoderModel, MatmulPlan};
use pl_runtime::{default_threads, ThreadPool};
use pl_serve::{Server, ServerConfig};
use pl_tensor::{fill_uniform, Xorshift};
use std::sync::Arc;
use std::time::Duration;

const SESSIONS: usize = 8;
const STEPS: usize = 32;
const KV: usize = 64;

fn drive(
    max_batch: usize,
    fused: bool,
    model: &Arc<DecoderModel>,
    pool: &Arc<ThreadPool>,
) -> (f64, u64) {
    let cfg = model.config();
    let hidden = cfg.hidden;
    let mut server = Server::new(
        Arc::clone(model),
        Arc::clone(pool),
        ServerConfig {
            tenants: 2,
            max_batch,
            kv_capacity: KV,
            coalesce_wait: Duration::from_millis(1),
            fused,
            ..Default::default()
        },
    );
    server.start();
    std::thread::scope(|scope| {
        for s in 0..SESSIONS {
            let server = &server;
            scope.spawn(move || {
                let id = server.create_session(s % 2).unwrap();
                let mut x = vec![0.0f32; hidden];
                fill_uniform(&mut x, &mut Xorshift::new(60 + s as u64), -0.5, 0.5);
                for _ in 0..STEPS {
                    x = server.step(id, &x).unwrap();
                }
                server.close_session(id).unwrap();
            });
        }
    });
    let snap = server.stats().snapshot();
    server.shutdown();
    row(&[
        max_batch.to_string(),
        if fused { "fused" } else { "serial" }.to_string(),
        f1(snap.tokens_per_s),
        f2(snap.mean_batch),
        snap.max_batch_observed.to_string(),
        snap.p50_us.to_string(),
        snap.p99_us.to_string(),
    ]);
    (snap.tokens_per_s, snap.p99_us)
}

const MIXED_PROMPT: usize = 64;
const MIXED_STEPS: usize = 64;
const MIXED_KV: usize = 128;

/// The continuous-batching payoff, measured: B = 8 closed-loop decode
/// sessions with one `MIXED_PROMPT`-token prefill arriving mid-run, once
/// with the prompt admitted as a single chunk (`prefill_chunk` >= prompt:
/// the old head-of-line-blocking behavior — the whole forward occupies one
/// batch while every decode step waits) and once chunked (8-token chunks
/// interleaving with the decode lanes). Reported decode p99 is the
/// queue-to-reply latency of the decode steps only; both rows land in the
/// trajectory artifact.
fn mixed_workload(model: &Arc<DecoderModel>, pool: &Arc<ThreadPool>, artifact: &mut BenchArtifact) {
    header(
        &format!(
            "mixed workload: {SESSIONS} closed-loop decode sessions + one \
             {MIXED_PROMPT}-token prefill arriving mid-run [measured]"
        ),
        &["prefill admission", "decode steps/s", "decode p99 us", "chunks", "mixed batches"],
    );
    for &(label, mode, chunk) in &[
        ("blocking (1 chunk)", "mixed-blocking", MIXED_PROMPT),
        ("chunked (8 x 8)", "mixed-chunked", 8usize),
    ] {
        let hidden = model.config().hidden;
        let mut server = Server::new(
            Arc::clone(model),
            Arc::clone(pool),
            ServerConfig {
                tenants: 2,
                max_batch: SESSIONS,
                kv_capacity: MIXED_KV,
                prefill_chunk: chunk,
                coalesce_wait: Duration::from_millis(1),
                ..Default::default()
            },
        );
        server.start();
        std::thread::scope(|scope| {
            for s in 0..SESSIONS {
                let server = &server;
                scope.spawn(move || {
                    let id = server.create_session(s % 2).unwrap();
                    let mut x = vec![0.0f32; hidden];
                    fill_uniform(&mut x, &mut Xorshift::new(80 + s as u64), -0.5, 0.5);
                    for _ in 0..MIXED_STEPS {
                        x = server.step(id, &x).unwrap();
                    }
                    server.close_session(id).unwrap();
                });
            }
            let server = &server;
            scope.spawn(move || {
                // Arrive mid-run: wait for the decode loop to be warm.
                use std::sync::atomic::Ordering;
                while server.stats().completed.load(Ordering::Relaxed) < (SESSIONS * 8) as u64 {
                    std::thread::yield_now();
                }
                let id = server.create_session(1).unwrap();
                let mut prompt = vec![0.0f32; hidden * MIXED_PROMPT];
                fill_uniform(&mut prompt, &mut Xorshift::new(99), -0.5, 0.5);
                let y = server.prefill(id, &prompt, MIXED_PROMPT).unwrap();
                assert_eq!(y.len(), hidden * MIXED_PROMPT);
                server.close_session(id).unwrap();
            });
        });
        let snap = server.stats().snapshot();
        server.shutdown();
        row(&[
            label.to_string(),
            f1(snap.tokens_per_s),
            snap.p99_us.to_string(),
            snap.prefill_chunks.to_string(),
            snap.mixed_batches.to_string(),
        ]);
        artifact.upsert(BenchRow {
            mode: mode.into(),
            batch: SESSIONS,
            shards: 1,
            steps_per_s: snap.tokens_per_s,
            p99_us: snap.p99_us as f64,
        });
    }
    println!();
}

/// Pack-per-call vs prepared-plan execution of one layer-scale weight
/// GEMM (`m x B = (m x k) x (k x B)`): the free `matmul` re-packs the
/// weight and re-constructs the kernel every call (the pre-PR-3 execution
/// path); [`MatmulPlan`] packed the weight once at build and reuses the
/// cached kernel, paying only the activation pack per call.
fn pack_amortization(pool: &Arc<ThreadPool>) {
    const M: usize = 256; // layer-scale weight at host size
    const K: usize = 256;
    const REPS: usize = 200;
    header(
        &format!(
            "pack amortization: one {M} x B weight GEMM, pack-per-call vs prepared [measured]"
        ),
        &["B", "per-call exec/s", "plan exec/s", "plan speedup"],
    );
    let mut rng = Xorshift::new(90);
    let mut w = vec![0.0f32; M * K];
    fill_uniform(&mut w, &mut rng, -0.5, 0.5);
    let plan = MatmulPlan::new(&w, Trans::No, M, K);
    for b in [1usize, 8] {
        let mut x = vec![0.0f32; K * b];
        fill_uniform(&mut x, &mut rng, -0.5, 0.5);
        let per_call = time_it(REPS, || {
            std::hint::black_box(matmul(&w, Trans::No, &x, Trans::No, M, b, K, pool));
        });
        let prepared = time_it(REPS, || {
            std::hint::black_box(plan.execute(&x, b, pool));
        });
        row(&[
            b.to_string(),
            f1(1.0 / per_call),
            f1(1.0 / prepared),
            format!("{:.2}x", per_call / prepared),
        ]);
    }
    println!();
}

const ROUTER_SESSIONS: usize = 16;

/// Router scale-out: the same closed-loop traffic through a router at
/// 1/2/4 shards, the machine's threads split disjointly across the
/// shards (so every row uses the *same* total compute), driven by the
/// shared [`measure_router_steps_per_s`] harness. Measured steps/s is
/// printed next to the `ScalingModel` projection — the paper's Table I
/// methodology applied to serving shards instead of training nodes.
fn router_scaling(model: &Arc<DecoderModel>, total_threads: usize, artifact: &mut BenchArtifact) {
    for &fused in &[false, true] {
        let mode = router_mode_name(fused);
        let load = RouterLoad {
            sessions: ROUTER_SESSIONS,
            steps: STEPS,
            tenants: 2,
            kv_capacity: KV,
            fused,
            seed: 70,
        };
        header(
            &format!(
                "pl-router scale-out ({ROUTER_SESSIONS} sessions x {STEPS} steps, \
                 {total_threads} threads split across shards, {mode}) [measured]"
            ),
            &["shards", "steps/s", "measured x", "projected x"],
        );
        let mut single = 0.0f64;
        for shards in [1usize, 2, 4] {
            let sps = measure_router_steps_per_s(model, shards, total_threads, &load);
            if shards == 1 {
                single = sps;
            }
            let projection =
                pl_router::serving_scaling_model(ROUTING_OVERHEAD).projected_speedup(shards);
            row(&[
                shards.to_string(),
                f1(sps),
                format!("{:.2}x", sps / single.max(1e-9)),
                format!("{projection:.2}x"),
            ]);
            artifact.upsert(BenchRow {
                mode: mode.to_string(),
                batch: ROUTER_SESSIONS,
                shards,
                steps_per_s: sps,
                p99_us: 0.0,
            });
        }
    }
}

fn main() {
    let model = Arc::new(DecoderModel::new(DecoderConfig::scaled_for_tests(), 11));
    let pool = Arc::new(ThreadPool::new(default_threads().min(8)));
    let mut artifact = BenchArtifact::load(&pl_bench::workspace_path(SERVE_ARTIFACT));
    pack_amortization(&pool);
    header(
        &format!(
            "pl-serve decode throughput ({SESSIONS} sessions x {STEPS} steps, {} threads) [measured]",
            pool.nthreads()
        ),
        &["max_batch", "mode", "steps/s", "mean batch", "max batch", "p50 us", "p99 us"],
    );
    let mut serial_at_max = 0.0;
    let mut fused_at_max = 0.0;
    for max_batch in [1usize, 2, 4, 8] {
        let (sps, p99) = drive(max_batch, false, &model, &pool);
        serial_at_max = sps;
        artifact.upsert(BenchRow {
            mode: "serial".into(),
            batch: max_batch,
            shards: 1,
            steps_per_s: sps,
            p99_us: p99 as f64,
        });
        let (sps, p99) = drive(max_batch, true, &model, &pool);
        fused_at_max = sps;
        artifact.upsert(BenchRow {
            mode: "fused".into(),
            batch: max_batch,
            shards: 1,
            steps_per_s: sps,
            p99_us: p99 as f64,
        });
    }
    println!(
        "\nfused/serial speedup at max_batch=8: {:.2}x",
        fused_at_max / serial_at_max.max(1e-9)
    );
    mixed_workload(&model, &pool, &mut artifact);
    router_scaling(&model, pool.nthreads(), &mut artifact);
    match artifact.save(&pl_bench::workspace_path(SERVE_ARTIFACT)) {
        Ok(()) => println!("\nwrote {} rows to {SERVE_ARTIFACT}", artifact.rows().len()),
        Err(e) => eprintln!("\nfailed to write {SERVE_ARTIFACT}: {e}"),
    }
}
