//! Serving throughput: the pl-serve dynamic batcher vs unbatched decode.
//!
//! N closed-loop client sessions decode through the server at several
//! `max_batch` settings (1 disables coalescing — every step is its own
//! parallel region). Reported: decode steps/s, mean executed batch,
//! p50/p99 queue-to-reply latency. The batched rows amortize region
//! broadcasts and keep the team busy across sessions (PAR-MODE dynamic
//! scheduling at the request level), which is where the throughput
//! headroom over row one comes from.

use pl_bench::{f1, f2, header, row};
use pl_dnn::{DecoderConfig, DecoderModel};
use pl_runtime::{default_threads, ThreadPool};
use pl_serve::{Server, ServerConfig};
use pl_tensor::{fill_uniform, Xorshift};
use std::sync::Arc;
use std::time::Duration;

const SESSIONS: usize = 8;
const STEPS: usize = 32;
const KV: usize = 64;

fn drive(max_batch: usize, model: &Arc<DecoderModel>, pool: &Arc<ThreadPool>) -> Vec<String> {
    let cfg = model.config();
    let hidden = cfg.hidden;
    let mut server = Server::new(
        Arc::clone(model),
        Arc::clone(pool),
        ServerConfig {
            tenants: 2,
            max_batch,
            kv_capacity: KV,
            coalesce_wait: Duration::from_millis(1),
            ..Default::default()
        },
    );
    server.start();
    std::thread::scope(|scope| {
        for s in 0..SESSIONS {
            let server = &server;
            scope.spawn(move || {
                let id = server.create_session(s % 2).unwrap();
                let mut x = vec![0.0f32; hidden];
                fill_uniform(&mut x, &mut Xorshift::new(60 + s as u64), -0.5, 0.5);
                for _ in 0..STEPS {
                    x = server.step(id, &x).unwrap();
                }
                server.close_session(id).unwrap();
            });
        }
    });
    let snap = server.stats().snapshot();
    server.shutdown();
    vec![
        max_batch.to_string(),
        f1(snap.tokens_per_s),
        f2(snap.mean_batch),
        snap.max_batch_observed.to_string(),
        snap.p50_us.to_string(),
        snap.p99_us.to_string(),
    ]
}

fn main() {
    let model = Arc::new(DecoderModel::new(DecoderConfig::scaled_for_tests(), 11));
    let pool = Arc::new(ThreadPool::new(default_threads().min(8)));
    header(
        &format!(
            "pl-serve decode throughput ({SESSIONS} sessions x {STEPS} steps, {} threads) [measured]",
            pool.nthreads()
        ),
        &["max_batch", "steps/s", "mean batch", "max batch", "p50 us", "p99 us"],
    );
    for max_batch in [1usize, 2, 4, 8] {
        row(&drive(max_batch, &model, &pool));
    }
}
