//! Serving throughput: the pl-serve dynamic batcher vs unbatched decode,
//! serial vs fused batch execution.
//!
//! N closed-loop client sessions decode through the server at several
//! `max_batch` settings (1 disables coalescing — every step is its own
//! parallel region), in both batch-execution modes: **serial** (each
//! session's step runs whole inside the region; B `hidden x 1` GEMVs per
//! layer) and **fused** (`ServerConfig::fused`: one `hidden x B` GEMM per
//! layer projection). Reported: decode steps/s, mean executed batch,
//! p50/p99 queue-to-reply latency. The batched rows amortize region
//! broadcasts (PAR-MODE dynamic scheduling at the request level); the
//! fused rows additionally raise decode arithmetic intensity from O(1)
//! to O(B) — the throughput lever the paper's BRGEMM design exists for,
//! which is where the fused-over-serial headroom at B >= 4 comes from.

use pl_bench::{
    f1, f2, fused_regressions, header, measure_router_steps_per_s, router_mode_name, row, time_it,
    trace_shapes_json, BenchArtifact, BenchRow, RouterLoad, ROUTING_OVERHEAD, SERVE_ARTIFACT,
    TRACE_SHAPES_ARTIFACT,
};
use pl_dnn::matmul::{matmul, Trans};
use pl_dnn::{DecoderConfig, DecoderModel, MatmulPlan, Precision};
use pl_perfmodel::Platform;
use pl_retune::{
    host_fingerprint, measure_mode_crossover, parse_summary, tune_prefill_chunk, RetuneConfig,
    Retuner, ServeRow, TuneArtifact, TUNE_DB_ARTIFACT,
};
use pl_runtime::{default_threads, ThreadPool};
use pl_serve::{BatchModeTable, Server, ServerConfig};
use pl_tensor::{fill_uniform, Xorshift};
use pl_trace::TraceSummary;
use std::sync::Arc;
use std::time::Duration;

const SESSIONS: usize = 8;
const STEPS: usize = 32;
const KV: usize = 64;

/// Artifact mode string: execution mode, suffixed with the precision when
/// it is not the f32 default (`serial`, `fused-i8`, …) so per-precision
/// rows coexist under distinct `{mode, batch, shards}` keys.
fn serve_mode_name(fused: bool, precision: Precision) -> String {
    let base = if fused { "fused" } else { "serial" };
    match precision {
        Precision::F32 => base.to_string(),
        Precision::Int8 => format!("{base}-i8"),
    }
}

fn drive(
    max_batch: usize,
    fused: bool,
    model: &Arc<DecoderModel>,
    pool: &Arc<ThreadPool>,
) -> (f64, u64) {
    let cfg = model.config();
    let hidden = cfg.hidden;
    let mut server = Server::new(
        Arc::clone(model),
        Arc::clone(pool),
        ServerConfig {
            tenants: 2,
            max_batch,
            kv_capacity: KV,
            coalesce_wait: Duration::from_millis(1),
            fused,
            precision: model.precision(),
            ..Default::default()
        },
    );
    server.start();
    std::thread::scope(|scope| {
        for s in 0..SESSIONS {
            let server = &server;
            scope.spawn(move || {
                let id = server.create_session(s % 2).unwrap();
                let mut x = vec![0.0f32; hidden];
                fill_uniform(&mut x, &mut Xorshift::new(60 + s as u64), -0.5, 0.5);
                for _ in 0..STEPS {
                    x = server.step(id, &x).unwrap();
                }
                server.close_session(id).unwrap();
            });
        }
    });
    let snap = server.stats().snapshot();
    server.shutdown();
    row(&[
        max_batch.to_string(),
        serve_mode_name(fused, model.precision()),
        f1(snap.tokens_per_s),
        f2(snap.mean_batch),
        snap.max_batch_observed.to_string(),
        snap.p50_us.to_string(),
        snap.p99_us.to_string(),
    ]);
    (snap.tokens_per_s, snap.p99_us)
}

const MIXED_PROMPT: usize = 64;
const MIXED_STEPS: usize = 64;
const MIXED_KV: usize = 128;

/// The continuous-batching payoff, measured: B = 8 closed-loop decode
/// sessions with one `MIXED_PROMPT`-token prefill arriving mid-run, once
/// with the prompt admitted as a single chunk (`prefill_chunk` >= prompt:
/// the old head-of-line-blocking behavior — the whole forward occupies one
/// batch while every decode step waits) and once chunked (8-token chunks
/// interleaving with the decode lanes). Reported decode p99 is the
/// queue-to-reply latency of the decode steps only; both rows land in the
/// trajectory artifact.
fn mixed_workload(
    model: &Arc<DecoderModel>,
    pool: &Arc<ThreadPool>,
    fp: &str,
    artifact: &mut BenchArtifact,
) {
    header(
        &format!(
            "mixed workload: {SESSIONS} closed-loop decode sessions + one \
             {MIXED_PROMPT}-token prefill arriving mid-run [measured]"
        ),
        &["prefill admission", "decode steps/s", "decode p99 us", "chunks", "mixed batches"],
    );
    for &(label, mode, chunk) in &[
        ("blocking (1 chunk)", "mixed-blocking", MIXED_PROMPT),
        ("chunked (8 x 8)", "mixed-chunked", 8usize),
    ] {
        let hidden = model.config().hidden;
        let mut server = Server::new(
            Arc::clone(model),
            Arc::clone(pool),
            ServerConfig {
                tenants: 2,
                max_batch: SESSIONS,
                kv_capacity: MIXED_KV,
                prefill_chunk: chunk,
                coalesce_wait: Duration::from_millis(1),
                ..Default::default()
            },
        );
        server.start();
        std::thread::scope(|scope| {
            for s in 0..SESSIONS {
                let server = &server;
                scope.spawn(move || {
                    let id = server.create_session(s % 2).unwrap();
                    let mut x = vec![0.0f32; hidden];
                    fill_uniform(&mut x, &mut Xorshift::new(80 + s as u64), -0.5, 0.5);
                    for _ in 0..MIXED_STEPS {
                        x = server.step(id, &x).unwrap();
                    }
                    server.close_session(id).unwrap();
                });
            }
            let server = &server;
            scope.spawn(move || {
                // Arrive mid-run: wait for the decode loop to be warm.
                use std::sync::atomic::Ordering;
                while server.stats().completed.load(Ordering::Relaxed) < (SESSIONS * 8) as u64 {
                    std::thread::yield_now();
                }
                let id = server.create_session(1).unwrap();
                let mut prompt = vec![0.0f32; hidden * MIXED_PROMPT];
                fill_uniform(&mut prompt, &mut Xorshift::new(99), -0.5, 0.5);
                let y = server.prefill(id, &prompt, MIXED_PROMPT).unwrap();
                assert_eq!(y.len(), hidden * MIXED_PROMPT);
                server.close_session(id).unwrap();
            });
        });
        let snap = server.stats().snapshot();
        server.shutdown();
        row(&[
            label.to_string(),
            f1(snap.tokens_per_s),
            snap.p99_us.to_string(),
            snap.prefill_chunks.to_string(),
            snap.mixed_batches.to_string(),
        ]);
        artifact.upsert(BenchRow {
            mode: mode.into(),
            batch: SESSIONS,
            shards: 1,
            steps_per_s: snap.tokens_per_s,
            p99_us: snap.p99_us as f64,
            fingerprint: fp.into(),
        });
    }
    println!();
}

const DENSITY_SESSIONS: usize = 8;
const DENSITY_PREFIX: usize = 64;

/// Session density at fixed KV memory: `DENSITY_SESSIONS` sessions open
/// with the same `DENSITY_PREFIX`-token prompt, then each decodes one
/// divergent token. The contiguous row runs with page size == capacity
/// (one capacity-sized allocation per layer at first write — the
/// pre-paging layout) and sharing off; the paged row uses the default
/// page size with the prefix cache on, so the prompt's pages are physical
/// copies held once and divergence allocates lazily. "resident sessions"
/// is how many such sessions fit in the KV memory the contiguous run
/// used — the density win the paged layout buys. A migration-latency
/// probe (quiesced export + import of a warm session between two servers)
/// rides along.
fn kv_density(
    model: &Arc<DecoderModel>,
    pool: &Arc<ThreadPool>,
    fp: &str,
    artifact: &mut BenchArtifact,
) {
    let hidden = model.config().hidden;
    let mut prompt = vec![0.0f32; hidden * DENSITY_PREFIX];
    fill_uniform(&mut prompt, &mut Xorshift::new(44), -0.5, 0.5);

    let run = |page_tokens: usize, share: bool| -> (usize, Server) {
        let server = Server::new(
            Arc::clone(model),
            Arc::clone(pool),
            ServerConfig {
                tenants: 2,
                max_batch: DENSITY_SESSIONS,
                kv_capacity: MIXED_KV,
                kv_page_tokens: page_tokens,
                share_prefix: share,
                coalesce_wait: Duration::ZERO,
                ..Default::default()
            },
        );
        let mut steps = Vec::new();
        for s in 0..DENSITY_SESSIONS {
            let id = server.create_session(s % 2).unwrap();
            server.prefill(id, &prompt, DENSITY_PREFIX).unwrap();
            let mut x = vec![0.0f32; hidden];
            fill_uniform(&mut x, &mut Xorshift::new(200 + s as u64), -0.5, 0.5);
            steps.push(server.submit_step(id, &x).unwrap());
        }
        while server.pump() > 0 {}
        for rx in steps {
            rx.recv().unwrap().unwrap();
        }
        let bytes = server.kv_pool().allocated_pages() * server.kv_pool().page_bytes();
        (bytes, server)
    };

    header(
        &format!(
            "KV session density: {DENSITY_SESSIONS} sessions sharing a \
             {DENSITY_PREFIX}-token prompt + 1 divergent token [measured]"
        ),
        &["layout", "KV bytes", "bytes/session", "resident @ fixed mem", "shared pages"],
    );
    let (contig_bytes, contig_server) = run(MIXED_KV, false);
    drop(contig_server);
    let (paged_bytes, paged_server) = run(pl_dnn::DEFAULT_PAGE_TOKENS, true);
    let shared = paged_server.prefix_cache().shared_pages();
    drop(paged_server);
    let per_paged = (paged_bytes / DENSITY_SESSIONS).max(1);
    let resident_paged = contig_bytes / per_paged;
    for (label, mode, bytes, resident, shared) in [
        ("contiguous", "kv-density-contig", contig_bytes, DENSITY_SESSIONS, 0usize),
        ("paged+shared", "kv-density-paged", paged_bytes, resident_paged, shared),
    ] {
        row(&[
            label.to_string(),
            bytes.to_string(),
            (bytes / DENSITY_SESSIONS).to_string(),
            resident.to_string(),
            shared.to_string(),
        ]);
        artifact.upsert(BenchRow {
            mode: mode.into(),
            batch: DENSITY_PREFIX,
            shards: 1,
            steps_per_s: resident as f64,
            p99_us: bytes as f64,
            fingerprint: fp.into(),
        });
    }
    println!(
        "density: {:.1}x resident sessions at the contiguous memory footprint",
        resident_paged as f64 / DENSITY_SESSIONS as f64
    );
    assert!(
        resident_paged >= 2 * DENSITY_SESSIONS,
        "paged+shared density below 2x: {resident_paged} vs {DENSITY_SESSIONS} contiguous"
    );

    // Migration latency: a warm session (full prompt in KV) round-trips
    // between two single-shard servers; each leg is one quiesced
    // export_session + import_session.
    let mk = || {
        Server::new(
            Arc::clone(model),
            Arc::clone(pool),
            ServerConfig {
                tenants: 2,
                max_batch: DENSITY_SESSIONS,
                kv_capacity: MIXED_KV,
                coalesce_wait: Duration::ZERO,
                ..Default::default()
            },
        )
    };
    let (src, dst) = (mk(), mk());
    let mut id = src.create_session(0).unwrap();
    src.prefill(id, &prompt, DENSITY_PREFIX).unwrap();
    let kv_bytes = {
        let export = src.export_session(id).unwrap();
        let bytes = export.kv.kv_bytes();
        id = src.import_session(&export).unwrap();
        bytes
    };
    const REPS: usize = 32;
    let t = std::time::Instant::now();
    for _ in 0..REPS {
        let out = src.export_session(id).unwrap();
        let there = dst.import_session(&out).unwrap();
        let back = dst.export_session(there).unwrap();
        id = src.import_session(&back).unwrap();
    }
    let us = t.elapsed().as_secs_f64() * 1e6 / (REPS * 2) as f64;
    println!(
        "migration latency ({DENSITY_PREFIX}-token context, {kv_bytes} KV bytes): \
         {us:.1} us per export+import\n"
    );
}

/// Pack-per-call vs prepared-plan execution of one layer-scale weight
/// GEMM (`m x B = (m x k) x (k x B)`): the free `matmul` re-packs the
/// weight and re-constructs the kernel every call (the pre-PR-3 execution
/// path); [`MatmulPlan`] packed the weight once at build and reuses the
/// cached kernel, paying only the activation pack per call.
fn pack_amortization(pool: &Arc<ThreadPool>) {
    const M: usize = 256; // layer-scale weight at host size
    const K: usize = 256;
    const REPS: usize = 200;
    header(
        &format!(
            "pack amortization: one {M} x B weight GEMM, pack-per-call vs prepared [measured]"
        ),
        &["B", "per-call exec/s", "plan exec/s", "plan speedup"],
    );
    let mut rng = Xorshift::new(90);
    let mut w = vec![0.0f32; M * K];
    fill_uniform(&mut w, &mut rng, -0.5, 0.5);
    let plan = MatmulPlan::new(&w, Trans::No, M, K);
    for b in [1usize, 8] {
        let mut x = vec![0.0f32; K * b];
        fill_uniform(&mut x, &mut rng, -0.5, 0.5);
        let per_call = time_it(REPS, || {
            std::hint::black_box(matmul(&w, Trans::No, &x, Trans::No, M, b, K, pool));
        });
        let prepared = time_it(REPS, || {
            std::hint::black_box(plan.execute(&x, b, pool));
        });
        row(&[
            b.to_string(),
            f1(1.0 / per_call),
            f1(1.0 / prepared),
            format!("{:.2}x", per_call / prepared),
        ]);
    }
    println!();
}

/// The quantized decode path: the same closed-loop workload served from
/// the int8 model (same seed, so its weights are the exact quantization
/// of the f32 model's), in both execution modes at B ∈ {1, 8}. The
/// artifact gains `serial-i8` / `fused-i8` rows, and the same-host
/// comparison table prints the i8/f32 throughput ratio against the f32
/// numbers measured *this run* (`f32_ref`) — decode is weight-bandwidth
/// bound, so the ~4x weight-stream reduction printed above the table is
/// the mechanism behind any i8 win.
fn int8_sweep(
    f32_model: &Arc<DecoderModel>,
    i8_model: &Arc<DecoderModel>,
    pool: &Arc<ThreadPool>,
    f32_ref: &[(usize, bool, f64)],
    fp: &str,
    artifact: &mut BenchArtifact,
) {
    header(
        &format!("quantized int8 decode ({SESSIONS} sessions x {STEPS} steps) [measured]"),
        &["max_batch", "mode", "steps/s", "mean batch", "max batch", "p50 us", "p99 us"],
    );
    let mut measured = Vec::new();
    for &batch in &[1usize, SESSIONS] {
        for &fused in &[false, true] {
            let (sps, p99) = drive(batch, fused, i8_model, pool);
            artifact.upsert(BenchRow {
                mode: serve_mode_name(fused, Precision::Int8),
                batch,
                shards: 1,
                steps_per_s: sps,
                p99_us: p99 as f64,
                fingerprint: fp.into(),
            });
            measured.push((batch, fused, sps));
        }
    }
    let f32_bytes = f32_model.weight_stream_bytes_per_step();
    let i8_bytes = i8_model.weight_stream_bytes_per_step();
    println!(
        "\nweight bytes streamed per decode step: f32 {} vs int8 {} ({:.2}x reduction)",
        f32_bytes,
        i8_bytes,
        f32_bytes as f64 / i8_bytes as f64
    );
    header(
        "f32 vs int8, same host, this run [measured]",
        &["max_batch", "mode", "f32 steps/s", "i8 steps/s", "i8/f32"],
    );
    for (batch, fused, i8_sps) in measured {
        let Some(&(_, _, f32_sps)) = f32_ref.iter().find(|&&(b, f, _)| b == batch && f == fused)
        else {
            continue;
        };
        row(&[
            batch.to_string(),
            if fused { "fused" } else { "serial" }.to_string(),
            f1(f32_sps),
            f1(i8_sps),
            format!("{:.2}x", i8_sps / f32_sps.max(1e-9)),
        ]);
    }
    println!();
}

const ROUTER_SESSIONS: usize = 16;

/// Router scale-out: the same closed-loop traffic through a router at
/// 1/2/4 shards, the machine's threads split disjointly across the
/// shards (so every row uses the *same* total compute), driven by the
/// shared [`measure_router_steps_per_s`] harness. Measured steps/s is
/// printed next to the `ScalingModel` projection — the paper's Table I
/// methodology applied to serving shards instead of training nodes.
fn router_scaling(
    model: &Arc<DecoderModel>,
    total_threads: usize,
    fp: &str,
    artifact: &mut BenchArtifact,
) {
    for &fused in &[false, true] {
        let mode = router_mode_name(fused);
        let load = RouterLoad {
            sessions: ROUTER_SESSIONS,
            steps: STEPS,
            tenants: 2,
            kv_capacity: KV,
            fused,
            seed: 70,
        };
        header(
            &format!(
                "pl-router scale-out ({ROUTER_SESSIONS} sessions x {STEPS} steps, \
                 {total_threads} threads split across shards, {mode}) [measured]"
            ),
            &["shards", "steps/s", "measured x", "projected x", "p99 us"],
        );
        let mut single = 0.0f64;
        for shards in [1usize, 2, 4] {
            let m = measure_router_steps_per_s(model, shards, total_threads, &load);
            if shards == 1 {
                single = m.steps_per_s;
            }
            let projection =
                pl_router::serving_scaling_model(ROUTING_OVERHEAD).projected_speedup(shards);
            row(&[
                shards.to_string(),
                f1(m.steps_per_s),
                format!("{:.2}x", m.steps_per_s / single.max(1e-9)),
                format!("{projection:.2}x"),
                m.p99_us.to_string(),
            ]);
            artifact.upsert(BenchRow {
                mode: mode.to_string(),
                batch: ROUTER_SESSIONS,
                shards,
                steps_per_s: m.steps_per_s,
                p99_us: m.p99_us as f64,
                fingerprint: fp.into(),
            });
        }
    }
}

/// The flight-recorder's disabled-path cost, as a bench row pair: the
/// same fused B = 8 drive with tracing compiled in but **off** (the
/// default everywhere else in this harness — one relaxed atomic load per
/// would-be span) vs **on** (every span recorded into the per-thread
/// rings). The off row must sit within noise of the on-row-free sweep
/// above; the on row prices full recording.
fn trace_overhead(
    model: &Arc<DecoderModel>,
    pool: &Arc<ThreadPool>,
    fp: &str,
    artifact: &mut BenchArtifact,
) {
    header(
        &format!("pl-trace overhead (fused, max_batch={SESSIONS}) [measured]"),
        &["max_batch", "mode", "steps/s", "mean batch", "max batch", "p50 us", "p99 us"],
    );
    assert!(!pl_trace::enabled(), "overhead baseline needs tracing off");
    // Each drive is a sub-second run, so single readings are noisy:
    // take the best of a few reps per mode (peak throughput is the
    // right statistic for an overhead comparison — interference only
    // ever subtracts).
    const REPS: usize = 3;
    let best = |rows: [(f64, u64); REPS]| {
        rows.into_iter().reduce(|a, b| if b.0 > a.0 { b } else { a }).unwrap()
    };
    let (off_sps, off_p99) = best(std::array::from_fn(|_| drive(SESSIONS, true, model, pool)));
    pl_trace::enable();
    let (on_sps, on_p99) = best(std::array::from_fn(|_| drive(SESSIONS, true, model, pool)));
    pl_trace::disable();
    println!("tracing on/off throughput ratio: {:.3}", on_sps / off_sps.max(1e-9));
    for (mode, sps, p99) in
        [("fused-trace-off", off_sps, off_p99), ("fused-trace-on", on_sps, on_p99)]
    {
        artifact.upsert(BenchRow {
            mode: mode.into(),
            batch: SESSIONS,
            shards: 1,
            steps_per_s: sps,
            p99_us: p99 as f64,
            fingerprint: fp.into(),
        });
    }
}

/// The span names the `--trace` breakdown reports, batcher-level down to
/// kernel-level. `step.queue_wait` is the submit→collect share of the
/// step latency; everything else is execute-side.
const BREAKDOWN_SPANS: [&str; 9] = [
    "batch.collect",
    "batch.checkout",
    "batch.execute",
    "batch.deliver",
    "step.queue_wait",
    "decode.ln",
    "decode.qkv",
    "decode.attn",
    "decode.ffn",
];

/// `--trace`: re-drive the B = 8 serial and fused workloads with the
/// flight recorder on, and print the per-phase time breakdown that
/// explains where the two execution modes actually spend the step — the
/// serial/fused gap attributed to named spans instead of guessed at.
/// The int8 model is re-driven too (both modes), so the per-shape
/// artifact carries `gemm.i8.execute` rows next to the f32 rows of the
/// same shapes. Writes the full event stream to `trace_serve.json`
/// (Chrome `chrome://tracing` / Perfetto format) and the per-shape
/// `gemm.execute` / `gemm.i8.execute` / `spmm.execute` stats to
/// `TRACE_shapes.json`.
fn trace_diagnose(model: &Arc<DecoderModel>, i8_model: &Arc<DecoderModel>, pool: &Arc<ThreadPool>) {
    pl_trace::enable();
    let serial_since = pl_trace::now_ns();
    println!("\n--- traced re-run: serial then fused at max_batch={SESSIONS} ---");
    drive(SESSIONS, false, model, pool);
    let serial_events = pl_trace::snapshot_since(serial_since);
    let fused_since = pl_trace::now_ns();
    drive(SESSIONS, true, model, pool);
    let fused_events = pl_trace::snapshot_since(fused_since);
    let i8_since = pl_trace::now_ns();
    println!("--- traced re-run: int8 serial then fused at max_batch={SESSIONS} ---");
    drive(SESSIONS, false, i8_model, pool);
    drive(SESSIONS, true, i8_model, pool);
    let i8_events = pl_trace::snapshot_since(i8_since);
    pl_trace::disable();
    if pl_trace::total_dropped() > 0 {
        println!(
            "warning: {} events dropped to ring wraparound (raise PL_TRACE_EVENTS)",
            pl_trace::total_dropped()
        );
    }
    let serial = TraceSummary::from_events(&serial_events);
    let fused = TraceSummary::from_events(&fused_events);

    header(
        &format!("per-phase breakdown, serial vs fused (max_batch={SESSIONS}) [traced]"),
        &["span", "serial ms", "count", "fused ms", "count", "fused/serial"],
    );
    for name in BREAKDOWN_SPANS {
        let (s_ns, s_n) = (serial.total_ns_for(name), serial.count_for(name));
        let (f_ns, f_n) = (fused.total_ns_for(name), fused.count_for(name));
        row(&[
            name.to_string(),
            f2(s_ns as f64 / 1e6),
            s_n.to_string(),
            f2(f_ns as f64 / 1e6),
            f_n.to_string(),
            format!("{:.2}x", f_ns as f64 / (s_ns as f64).max(1e-9)),
        ]);
    }
    let gemm = |s: &TraceSummary| s.total_ns_for("gemm.execute") + s.total_ns_for("spmm.execute");
    row(&[
        "gemm+spmm".to_string(),
        f2(gemm(&serial) as f64 / 1e6),
        serial.count_for("gemm.execute").to_string(),
        f2(gemm(&fused) as f64 / 1e6),
        fused.count_for("gemm.execute").to_string(),
        format!("{:.2}x", gemm(&fused) as f64 / (gemm(&serial) as f64).max(1e-9)),
    ]);

    // All runs in one Chrome trace: each re-run's events precede the
    // next's on the shared epoch clock, so concatenation stays sorted.
    let mut all = serial_events;
    all.extend(fused_events);
    all.extend(i8_events.iter().cloned());
    let trace_path = pl_bench::workspace_path("trace_serve.json");
    match std::fs::write(&trace_path, pl_trace::chrome_trace_json(&all)) {
        Ok(()) => println!("\nwrote {} events to {}", all.len(), trace_path.display()),
        Err(e) => eprintln!("\nfailed to write {}: {e}", trace_path.display()),
    }
    let mut shapes = serial;
    shapes.merge(&fused);
    shapes.merge(&TraceSummary::from_events(&i8_events));
    let shapes_path = pl_bench::workspace_path(TRACE_SHAPES_ARTIFACT);
    match std::fs::write(&shapes_path, trace_shapes_json(&shapes)) {
        Ok(()) => println!("wrote per-shape kernel timings to {}", shapes_path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", shapes_path.display()),
    }
}

/// The pl-retune closed loop, run against this bench's own workload:
/// measure the serial-vs-fused crossover per batch width on a live
/// server (installing the measured [`BatchModeTable`]), run one retune
/// cycle over the harvested hot shapes (installing measured loop-spec
/// winners through the registry epoch), then **re-measure** B = 8 in
/// both modes with the retuned specs live. All before/after rows come
/// from the same manual-pump instrument the decision is made with (the
/// threaded client driver's coalesce waits and scheduling put the
/// fused/serial gap inside its run-to-run noise on a loaded host); they
/// land in the artifact as `pre-retune`/`post-retune`, and the whole
/// evidence chain (shape winners, mode decisions, before/after serving
/// rows) is written to `TUNE_db.json`. Asserts the fused-vs-serial call
/// at B = 8 is closed: either fused no longer regresses, or the
/// measured policy switched the mode.
fn retune_closed_loop(
    model: &Arc<DecoderModel>,
    pool: &Arc<ThreadPool>,
    fp: &str,
    artifact: &mut BenchArtifact,
) {
    let threads = pool.nthreads();
    let retuner = Retuner::new(Platform::generic_host(threads), threads, RetuneConfig::default());
    let mut server = Server::new(
        Arc::clone(model),
        Arc::clone(pool),
        ServerConfig {
            tenants: 2,
            max_batch: SESSIONS,
            kv_capacity: KV,
            coalesce_wait: Duration::ZERO,
            ..Default::default()
        },
    );
    server.warm_tuning(retuner.platform(), threads);
    header(
        &format!("pl-retune: measured fused-vs-serial crossover ({threads} threads) [measured]"),
        &["batch", "serial steps/s", "fused steps/s", "decided"],
    );
    let cross = measure_mode_crossover(&server, &[1, 2, 4, SESSIONS], 16);
    let table = BatchModeTable::from_measurements(&cross);
    server.install_mode_policy(table.clone());
    for &(w, s, f) in &cross {
        let decided = table.fused_for(w).unwrap_or(false);
        row(&[w.to_string(), f1(s), f1(f), if decided { "fused" } else { "serial" }.to_string()]);
    }
    let report = retuner.run_cycle(&server, pool);
    header(
        &format!(
            "pl-retune: one cycle over {} hot shapes ({} skipped) [measured]",
            report.hot_shapes, report.shapes_skipped
        ),
        &["key", "weight", "old spec", "old GF/s", "new spec", "new GF/s", "changed"],
    );
    for o in &report.outcomes {
        row(&[
            o.key.clone(),
            o.weight.to_string(),
            o.old_spec.clone().unwrap_or_else(|| "-".into()),
            o.old_gflops.map(f1).unwrap_or_else(|| "-".into()),
            o.new_spec.clone(),
            f1(o.new_gflops),
            o.changed.to_string(),
        ]);
    }
    println!(
        "registry epoch {} -> {}: {} spec(s) changed in {:.2}s",
        report.epoch_before, report.epoch_after, report.specs_changed, report.cycle_seconds
    );
    // The other serve-level knob the measured loop learns: the prefill
    // chunk size that best protects decode latency with a prefill in
    // flight. The winner stays installed for the post-retune re-measure.
    header(
        "pl-retune: prefill chunk under decode load (32-token prompt, 4 decode lanes) [measured]",
        &["chunk", "decode steps/s"],
    );
    let (chunk_rows, best_chunk) = tune_prefill_chunk(&server, &[4, 8, 16, 32], 32, 4, 16);
    for &(c, sps) in &chunk_rows {
        row(&[c.to_string(), f1(sps)]);
    }
    println!("installed prefill chunk: {best_chunk}");
    // Post-retune re-measure, same instrument: the retuned specs are
    // installed, so the B = 8 crossover now runs the measured winners.
    let (_, post_serial, post_fused) = measure_mode_crossover(&server, &[SESSIONS], 32)[0];
    server.install_mode_policy(table.clone()); // the crossover leaves a forced mode
    server.shutdown();
    let (_, pre_serial, pre_fused) = *cross.last().unwrap();
    let decided_fused = table.fused_for(SESSIONS).unwrap_or(false);
    let post_decided = if decided_fused { post_fused } else { post_serial };
    println!(
        "B={SESSIONS} decision: {} (pre-retune: serial {} / fused {}; post-retune: \
         serial {} / fused {})",
        if decided_fused { "fused" } else { "serial" },
        f1(pre_serial),
        f1(pre_fused),
        f1(post_serial),
        f1(post_fused),
    );
    // The fused-regression satellite: the mode at B = 8 is now whichever
    // side measured faster, so either fused holds its own post-retune or
    // the decision switched to serial. 0.85: headroom for measurement
    // noise on a loaded host.
    if decided_fused {
        assert!(
            post_fused >= 0.85 * post_serial,
            "fused decided at B={SESSIONS} but still regresses: fused {post_fused:.0} vs \
             serial {post_serial:.0} steps/s"
        );
    }
    // The committed before/after pair: what the static default mode
    // (serial) was delivering vs what the measured decision delivers
    // with the retuned specs installed. p99 is not part of this
    // instrument — the latency rows above keep that story.
    artifact.upsert(BenchRow {
        mode: "pre-retune".into(),
        batch: SESSIONS,
        shards: 1,
        steps_per_s: pre_serial,
        p99_us: 0.0,
        fingerprint: fp.into(),
    });
    artifact.upsert(BenchRow {
        mode: "post-retune".into(),
        batch: SESSIONS,
        shards: 1,
        steps_per_s: post_decided,
        p99_us: 0.0,
        fingerprint: fp.into(),
    });

    let mut tune = TuneArtifact {
        fingerprint: host_fingerprint(retuner.platform().name, threads),
        ..Default::default()
    };
    tune.add_report(&report);
    tune.add_decisions(&table);
    for (phase, mode, sps) in [
        ("pre-retune", "serial", pre_serial),
        ("pre-retune", "fused", pre_fused),
        ("post-retune", "serial", post_serial),
        ("post-retune", "fused", post_fused),
        ("post-retune", "decided", post_decided),
    ] {
        tune.serve.push(ServeRow {
            phase: phase.into(),
            mode: mode.into(),
            batch: SESSIONS,
            shards: 1,
            steps_per_s: sps,
        });
    }
    let json = tune.to_json();
    assert!(parse_summary(&json).is_some(), "tune artifact must validate");
    let path = pl_bench::workspace_path(TUNE_DB_ARTIFACT);
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote retune evidence to {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
    println!();
}

fn main() {
    let trace_mode = std::env::args().any(|a| a == "--trace");
    let model = Arc::new(DecoderModel::new(DecoderConfig::scaled_for_tests(), 11));
    // Same seed: the int8 model's weights are the exact quantization of
    // the f32 model's, so the comparison table isolates the execution
    // path (the workload is identical).
    let i8_model = Arc::new(DecoderModel::new_with_precision(
        DecoderConfig::scaled_for_tests(),
        11,
        Precision::Int8,
    ));
    let pool = Arc::new(ThreadPool::new(default_threads().min(8)));
    // Stamp every row this run writes with the measuring host's
    // fingerprint — the same string the retune evidence DB keys on — so
    // the trajectory file can hold numbers from several machines without
    // them overwriting each other.
    let threads = pool.nthreads();
    let fp = host_fingerprint(Platform::generic_host(threads).name, threads);
    let mut artifact = BenchArtifact::load(&pl_bench::workspace_path(SERVE_ARTIFACT));
    pack_amortization(&pool);
    header(
        &format!(
            "pl-serve decode throughput ({SESSIONS} sessions x {STEPS} steps, {} threads) [measured]",
            pool.nthreads()
        ),
        &["max_batch", "mode", "steps/s", "mean batch", "max batch", "p50 us", "p99 us"],
    );
    let mut serial_at_max = 0.0;
    let mut fused_at_max = 0.0;
    let mut f32_ref = Vec::new();
    for max_batch in [1usize, 2, 4, 8] {
        let (sps, p99) = drive(max_batch, false, &model, &pool);
        serial_at_max = sps;
        f32_ref.push((max_batch, false, sps));
        artifact.upsert(BenchRow {
            mode: "serial".into(),
            batch: max_batch,
            shards: 1,
            steps_per_s: sps,
            p99_us: p99 as f64,
            fingerprint: fp.clone(),
        });
        let (sps, p99) = drive(max_batch, true, &model, &pool);
        fused_at_max = sps;
        f32_ref.push((max_batch, true, sps));
        artifact.upsert(BenchRow {
            mode: "fused".into(),
            batch: max_batch,
            shards: 1,
            steps_per_s: sps,
            p99_us: p99 as f64,
            fingerprint: fp.clone(),
        });
    }
    println!(
        "\nfused/serial speedup at max_batch=8: {:.2}x",
        fused_at_max / serial_at_max.max(1e-9)
    );
    int8_sweep(&model, &i8_model, &pool, &f32_ref, &fp, &mut artifact);
    mixed_workload(&model, &pool, &fp, &mut artifact);
    kv_density(&model, &pool, &fp, &mut artifact);
    router_scaling(&model, pool.nthreads(), &fp, &mut artifact);
    retune_closed_loop(&model, &pool, &fp, &mut artifact);
    trace_overhead(&model, &pool, &fp, &mut artifact);
    if trace_mode {
        trace_diagnose(&model, &i8_model, &pool);
    }
    for warning in fused_regressions(artifact.rows()) {
        println!("{warning}");
    }
    match artifact.save(&pl_bench::workspace_path(SERVE_ARTIFACT)) {
        Ok(()) => println!("\nwrote {} rows to {SERVE_ARTIFACT}", artifact.rows().len()),
        Err(e) => eprintln!("\nfailed to write {SERVE_ARTIFACT}: {e}"),
    }
}
