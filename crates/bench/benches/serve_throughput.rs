//! Serving throughput: the pl-serve dynamic batcher vs unbatched decode,
//! serial vs fused batch execution.
//!
//! N closed-loop client sessions decode through the server at several
//! `max_batch` settings (1 disables coalescing — every step is its own
//! parallel region), in both batch-execution modes: **serial** (each
//! session's step runs whole inside the region; B `hidden x 1` GEMVs per
//! layer) and **fused** (`ServerConfig::fused`: one `hidden x B` GEMM per
//! layer projection). Reported: decode steps/s, mean executed batch,
//! p50/p99 queue-to-reply latency. The batched rows amortize region
//! broadcasts (PAR-MODE dynamic scheduling at the request level); the
//! fused rows additionally raise decode arithmetic intensity from O(1)
//! to O(B) — the throughput lever the paper's BRGEMM design exists for,
//! which is where the fused-over-serial headroom at B >= 4 comes from.

use pl_bench::{f1, f2, header, row};
use pl_dnn::{DecoderConfig, DecoderModel};
use pl_runtime::{default_threads, ThreadPool};
use pl_serve::{Server, ServerConfig};
use pl_tensor::{fill_uniform, Xorshift};
use std::sync::Arc;
use std::time::Duration;

const SESSIONS: usize = 8;
const STEPS: usize = 32;
const KV: usize = 64;

fn drive(max_batch: usize, fused: bool, model: &Arc<DecoderModel>, pool: &Arc<ThreadPool>) -> f64 {
    let cfg = model.config();
    let hidden = cfg.hidden;
    let mut server = Server::new(
        Arc::clone(model),
        Arc::clone(pool),
        ServerConfig {
            tenants: 2,
            max_batch,
            kv_capacity: KV,
            coalesce_wait: Duration::from_millis(1),
            fused,
            ..Default::default()
        },
    );
    server.start();
    std::thread::scope(|scope| {
        for s in 0..SESSIONS {
            let server = &server;
            scope.spawn(move || {
                let id = server.create_session(s % 2).unwrap();
                let mut x = vec![0.0f32; hidden];
                fill_uniform(&mut x, &mut Xorshift::new(60 + s as u64), -0.5, 0.5);
                for _ in 0..STEPS {
                    x = server.step(id, &x).unwrap();
                }
                server.close_session(id).unwrap();
            });
        }
    });
    let snap = server.stats().snapshot();
    server.shutdown();
    row(&[
        max_batch.to_string(),
        if fused { "fused" } else { "serial" }.to_string(),
        f1(snap.tokens_per_s),
        f2(snap.mean_batch),
        snap.max_batch_observed.to_string(),
        snap.p50_us.to_string(),
        snap.p99_us.to_string(),
    ]);
    snap.tokens_per_s
}

fn main() {
    let model = Arc::new(DecoderModel::new(DecoderConfig::scaled_for_tests(), 11));
    let pool = Arc::new(ThreadPool::new(default_threads().min(8)));
    header(
        &format!(
            "pl-serve decode throughput ({SESSIONS} sessions x {STEPS} steps, {} threads) [measured]",
            pool.nthreads()
        ),
        &["max_batch", "mode", "steps/s", "mean batch", "max batch", "p50 us", "p99 us"],
    );
    let mut serial_at_max = 0.0;
    let mut fused_at_max = 0.0;
    for max_batch in [1usize, 2, 4, 8] {
        serial_at_max = drive(max_batch, false, &model, &pool);
        fused_at_max = drive(max_batch, true, &model, &pool);
    }
    println!(
        "\nfused/serial speedup at max_batch=8: {:.2}x",
        fused_at_max / serial_at_max.max(1e-9)
    );
}
