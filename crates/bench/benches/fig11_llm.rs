//! Figure 11: LLM inference (GPT-J-6B, Llama2-13B) — first-token and
//! next-token latency, HF-like vs PARLOOPER, FP32 vs BF16, SPR and GVT3.
//!
//! Paper shape: PARLOOPER 1.1-2.3x over HF on SPR, ~2.8x on GVT3; BF16
//! accelerates the compute-bound first token ~5.7x and the
//! bandwidth-bound next tokens ~1.9x (weights shrink 2x).

use pl_bench::baseline::stack_eff;
use pl_bench::{f1, f2, header, row};
use pl_dnn::DecoderConfig;
use pl_perfmodel::{roofline, Platform, WorkItem};
use pl_tensor::DType;

struct Latency {
    first_ms: f64,
    next_ms: f64,
}

fn latency(p: &Platform, cfg: &DecoderConfig, dtype: DType, eff: f64) -> Latency {
    let threads = p.total_cores();
    let prompt = 1024;
    let elem = dtype.size_of();
    // First token: compute bound over the whole prompt.
    let first = WorkItem { flops: cfg.first_token_flops(prompt), bytes: cfg.weight_bytes(elem) };
    // Next token: read all weights + KV cache per generated token.
    let next = WorkItem {
        flops: cfg.next_token_flops(prompt),
        bytes: cfg.weight_bytes(elem) + cfg.kv_cache_bytes(prompt, elem),
    };
    Latency {
        first_ms: 1e3 * roofline::time_seconds(p, threads, dtype, first, eff),
        next_ms: 1e3 * roofline::time_seconds(p, threads, dtype, next, eff),
    }
}

fn main() {
    for platform in [Platform::spr(), Platform::gvt3()] {
        header(
            &format!(
                "Fig.11 LLM inference on {} (1024 in / 32 out, BS=1) [simulated]",
                platform.name
            ),
            &["model", "stack", "dtype", "first tok (ms)", "next tok (ms)"],
        );
        for cfg in [DecoderConfig::gptj_6b(), DecoderConfig::llama2_13b()] {
            let name = if cfg.layers == 28 { "GPTJ-6B" } else { "LLAMA2-13B" };
            let cases: [(&str, DType, f64); 4] = [
                ("HF", DType::F32, stack_eff::IPEX),
                ("PARLOOPER", DType::F32, stack_eff::PARLOOPER),
                ("HF", DType::Bf16, stack_eff::IPEX),
                ("PARLOOPER", DType::Bf16, stack_eff::PARLOOPER),
            ];
            for (stack, dt, eff) in cases {
                let l = latency(&platform, &cfg, dt, eff);
                row(&[
                    name.to_string(),
                    stack.to_string(),
                    format!("{dt}"),
                    f1(l.first_ms),
                    f2(l.next_ms),
                ]);
            }
            let f32_l = latency(&platform, &cfg, DType::F32, stack_eff::PARLOOPER);
            let bf16_l = latency(&platform, &cfg, DType::Bf16, stack_eff::PARLOOPER);
            println!(
                "{name}: BF16 speedup first={:.1}x next={:.1}x",
                f32_l.first_ms / bf16_l.first_ms,
                f32_l.next_ms / bf16_l.next_ms
            );
        }
    }

    // Measured host check: scaled decoder, prefill vs cached step.
    use pl_dnn::Decoder;
    use pl_runtime::global_pool;
    use pl_tensor::{fill_uniform, Xorshift};
    let pool = global_pool();
    let cfg = DecoderConfig { layers: 2, hidden: 128, heads: 4, ffn: 256, vocab: 512, ffn_mats: 2 };
    let prompt = 64usize;
    let mut x = vec![0.0f32; cfg.hidden * prompt];
    fill_uniform(&mut x, &mut Xorshift::new(3), -0.5, 0.5);
    let mut d = Decoder::new(cfg, prompt + 8, 5);
    let t_first = pl_bench::time_it(1, || {
        d.reset();
        let _ = d.prefill(&x, prompt, pool);
    });
    let t_next = pl_bench::time_it(3, || {
        let _ = d.step(&x[..cfg.hidden], pool);
    });
    header("Fig.11 measured host (scaled decoder, 64-token prompt)", &["phase", "ms"]);
    row(&["first token (prefill)".into(), f2(t_first * 1e3)]);
    row(&["next token (KV cache)".into(), f2(t_next * 1e3)]);
    println!("KV cache makes next-token {:.0}x cheaper than prefill", t_first / t_next);
}
