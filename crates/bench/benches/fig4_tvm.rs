//! Figure 4: FP32 GEMM on SPR — PARLOOPER vs oneDNN-like vs
//! TVM-Autoscheduler-like, plus autotuning-time comparison.
//!
//! Paper shape: PARLOOPER 1.24-1.76x faster on the small GEMMs, parity on
//! the large ones; PARLOOPER's search is 2.3-500x faster because it stops
//! at the TPP boundary instead of searching registers/instructions.

use pl_bench::baseline::{
    autotune_seconds, onednn_gemm_gflops, parlooper_gemm_gflops, tvm_gemm_gflops,
};
use pl_bench::{f1, f2, header, row};
use pl_perfmodel::Platform;
use pl_tensor::DType;

fn main() {
    let p = Platform::spr();
    let threads = p.total_cores();
    header(
        "Fig.4 FP32 GEMM on SPR [simulated]",
        &["MxNxK", "PARLOOPER", "oneDNN", "TVM-auto", "PL/TVM"],
    );
    for &s in &[512usize, 1024, 2048, 4096] {
        let ours = parlooper_gemm_gflops(&p, threads, s, s, s, DType::F32);
        let dnn = onednn_gemm_gflops(&p, threads, s, s, s, DType::F32);
        let tvm = tvm_gemm_gflops(&p, threads, s, s, s, DType::F32);
        row(&[format!("{s}^3"), f1(ours), f1(dnn), f1(tvm), format!("{}x", f2(ours / tvm))]);
    }

    // Autotuning wall-time comparison. PARLOOPER candidates cost one
    // cached-JIT kernel run; TVM candidates pay code generation +
    // compilation + measurement (~1.5 s each, per the paper's 17-50 min
    // for 1000 schedules).
    header(
        "Fig.4 autotuning time (1000 candidates) [emulated costs]",
        &["MxNxK", "PARLOOPER (s)", "TVM (s)", "TVM/PL"],
    );
    for &s in &[512usize, 1024, 2048, 4096] {
        // Per-candidate cost for PARLOOPER: ~3 timed kernel runs.
        let b = pl_bench::baseline::model_block(s);
        let kernel_time = pl_perfmodel::GemmModelSpec {
            m: s,
            n: s,
            k: s,
            bm: b,
            bn: b,
            bk: b,
            k_step: s / b,
            spec: "BCa".into(),
            blocks: [vec![], vec![], vec![]],
            dtype: DType::F32,
        }
        .predict(&p, threads)
        .map(|pr| pr.seconds)
        .unwrap_or(0.0);
        let ours = autotune_seconds(1000, 3.0 * kernel_time + 0.002);
        let tvm = autotune_seconds(1000, 1.5 + 3.0 * kernel_time);
        row(&[
            format!("{s}^3"),
            format!("{ours:.1}"),
            format!("{tvm:.1}"),
            format!("{}x", f1(tvm / ours)),
        ]);
    }
}
