//! Criterion micro-benchmarks of the elementwise/normalization TPPs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pl_tensor::Xorshift;
use std::hint::black_box;

fn bench_tpps(c: &mut Criterion) {
    let mut g = c.benchmark_group("tpp");
    g.sample_size(20);
    let (m, n) = (64usize, 64usize);
    let mut rng = Xorshift::new(2);
    let x: Vec<f32> = (0..m * n).map(|_| rng.next_f32() - 0.5).collect();
    let mut y = vec![0.0f32; m * n];
    g.throughput(Throughput::Elements((m * n) as u64));

    g.bench_function("relu_64x64", |b| {
        b.iter(|| pl_tpp::unary::relu(m, n, black_box(&x), m, &mut y, m))
    });
    g.bench_function("gelu_64x64", |b| {
        b.iter(|| pl_tpp::unary::gelu(m, n, black_box(&x), m, &mut y, m))
    });
    g.bench_function("softmax_cols_64x64", |b| {
        b.iter(|| pl_tpp::softmax::softmax_cols(m, n, black_box(&x), m, &mut y, m))
    });
    let gamma = vec![1.0f32; m];
    let beta = vec![0.0f32; m];
    let mut mean = vec![0.0f32; n];
    let mut rstd = vec![0.0f32; n];
    g.bench_function("layernorm_64x64", |b| {
        b.iter(|| {
            pl_tpp::norm::layernorm(
                m,
                n,
                black_box(&x),
                m,
                &gamma,
                &beta,
                1e-5,
                &mut y,
                m,
                &mut mean,
                &mut rstd,
            )
        })
    });
    g.bench_function("transpose_64x64", |b| {
        b.iter(|| pl_tpp::transform::transpose(m, n, black_box(&x), m, &mut y, n))
    });
    g.finish();
}

criterion_group!(benches, bench_tpps);
criterion_main!(benches);
