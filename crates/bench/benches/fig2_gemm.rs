//! Figure 2: GEMM performance of varying sizes on SPR / GVT3 / Zen4,
//! FP32 and BF16, PARLOOPER vs oneDNN-like.
//!
//! Paper shape: FP32 mostly on par; BF16 PARLOOPER wins up to 1.98x on SPR
//! (flat-B conflict misses at ld=4096); SPR BF16 up to ~9x its FP32.

use pl_bench::baseline::{onednn_gemm_gflops, parlooper_gemm_gflops};
use pl_bench::{f1, f2, header, row};
use pl_perfmodel::Platform;
use pl_tensor::DType;

fn main() {
    let sizes = [512usize, 1024, 2048, 4096];
    for platform in [Platform::spr(), Platform::gvt3(), Platform::zen4()] {
        let threads = platform.total_cores();
        header(
            &format!("Fig.2 GEMM on {} ({} cores) [simulated]", platform.name, threads),
            &["MxNxK", "PL-BF16", "oneDNN-BF16", "PL-FP32", "oneDNN-FP32", "BF16 speedup"],
        );
        for &s in &sizes {
            let pl_bf16 = parlooper_gemm_gflops(&platform, threads, s, s, s, DType::Bf16);
            let dn_bf16 = onednn_gemm_gflops(&platform, threads, s, s, s, DType::Bf16);
            let pl_f32 = parlooper_gemm_gflops(&platform, threads, s, s, s, DType::F32);
            let dn_f32 = onednn_gemm_gflops(&platform, threads, s, s, s, DType::F32);
            row(&[
                format!("{s}x{s}x{s}"),
                f1(pl_bf16),
                f1(dn_bf16),
                f1(pl_f32),
                f1(dn_f32),
                format!("{}x", f2(pl_bf16 / dn_bf16)),
            ]);
        }
    }

    // Measured sanity on the host: the real kernel at a small size.
    use pl_kernels::{Gemm, GemmShape, GemmTuning};
    use pl_runtime::global_pool;
    use pl_tensor::{fill_uniform, BlockedMatrix, Xorshift};
    let pool = global_pool();
    let s = 256usize;
    let shape = GemmShape::with_default_blocks(s, s, s);
    let mut rng = Xorshift::new(1);
    let mut a_cm = vec![0.0f32; s * s];
    let mut b_cm = vec![0.0f32; s * s];
    fill_uniform(&mut a_cm, &mut rng, -0.5, 0.5);
    fill_uniform(&mut b_cm, &mut rng, -0.5, 0.5);
    let mut a = BlockedMatrix::<f32>::a_layout(s, s, shape.bm, shape.bk).unwrap();
    a.pack_from_colmajor(&a_cm);
    let mut b = BlockedMatrix::<f32>::b_layout(s, s, shape.bk, shape.bn).unwrap();
    b.pack_from_colmajor(&b_cm);
    let mut c = BlockedMatrix::<f32>::c_layout(s, s, shape.bm, shape.bn).unwrap();
    let tuned =
        Gemm::<f32, f32, f32>::new(shape, GemmTuning::default_parallel(shape.kb())).unwrap();
    let t = pl_bench::time_it(5, || tuned.execute(&a, &b, &mut c, pool).unwrap());
    header("Fig.2 measured host sanity (FP32)", &["MxNxK", "threads", "GFLOPS"]);
    row(&[
        format!("{s}x{s}x{s}"),
        format!("{}", pool.nthreads()),
        f1(pl_bench::gflops(shape.flops() as f64, t)),
    ]);
}
