//! Figure 9: BERT-Large SQuAD fine-tuning throughput (sequences/sec).
//!
//! Paper shape on SPR: HF-FP32 3.9 << IPEX-BF16 13.3 << TPP-fixed 35.3 <
//! PARLOOPER 43.3 (1.22x from tuned loop instantiations); GVT3 ~15.2,
//! Zen4 ~9.8 — SPR leads via its AMX BF16 peak.

use pl_bench::baseline::stack_eff;
use pl_bench::{f1, header, row};
use pl_dnn::BertConfig;
use pl_perfmodel::{roofline, Platform, WorkItem};
use pl_tensor::DType;

fn seqs_per_sec(
    platform: &Platform,
    cfg: &BertConfig,
    dtype: DType,
    eff: f64,
    padded: bool,
) -> f64 {
    // Fine-tuning: forward + backward ~ 3x forward flops. SQuAD sequences
    // padded to 384; the Unpad optimization halves effective tokens.
    let tokens = if padded { cfg.seq } else { cfg.seq / 2 };
    let flops = 3.0 * cfg.model_flops(tokens);
    let bytes = cfg.layers as f64 * cfg.layer_weight_bytes(dtype.size_of()) * 3.0;
    let t = roofline::time_seconds(
        platform,
        platform.total_cores(),
        dtype,
        WorkItem { flops, bytes },
        eff,
    );
    1.0 / t
}

fn main() {
    let cfg = BertConfig::large();
    let spr = Platform::spr();
    header(
        "Fig.9 BERT-Large SQuAD fine-tuning, seq/s [simulated]",
        &["stack", "platform", "dtype", "seq/s"],
    );
    let rows: [(&str, &Platform, DType, f64, bool); 7] = [
        ("HuggingFace", &spr, DType::F32, stack_eff::HF, true),
        ("IPEX+oneDNN", &spr, DType::F32, stack_eff::IPEX, true),
        ("IPEX+oneDNN", &spr, DType::Bf16, stack_eff::IPEX, true),
        ("TPP fixed loops", &spr, DType::Bf16, stack_eff::TPP_FIXED, false),
        ("PARLOOPER (this)", &spr, DType::Bf16, stack_eff::PARLOOPER, false),
        ("PARLOOPER (this)", &Platform::gvt3(), DType::Bf16, stack_eff::PARLOOPER, false),
        ("PARLOOPER (this)", &Platform::zen4(), DType::Bf16, stack_eff::PARLOOPER, false),
    ];
    let mut parlooper_spr = 0.0;
    let mut tpp_fixed_spr = 0.0;
    for (stack, p, dt, eff, padded) in rows {
        let v = seqs_per_sec(p, &cfg, dt, eff, padded);
        if stack.starts_with("PARLOOPER") && p.name == "SPR" {
            parlooper_spr = v;
        }
        if stack.starts_with("TPP fixed") {
            tpp_fixed_spr = v;
        }
        row(&[stack.to_string(), p.name.to_string(), format!("{dt}"), f1(v)]);
    }
    println!(
        "\nPARLOOPER vs fixed-loop TPP on SPR: {:.2}x (paper: 1.22x)",
        parlooper_spr / tpp_fixed_spr
    );

    // Measured host check: a real fine-tuning step on a tiny config.
    use pl_dnn::BertEncoder;
    use pl_runtime::global_pool;
    use pl_tensor::{fill_uniform, Xorshift};
    let pool = global_pool();
    let tiny = BertConfig { hidden: 64, heads: 4, intermediate: 128, layers: 2, seq: 32 };
    let mut enc = BertEncoder::new(tiny, 3);
    let tokens = tiny.seq;
    let mut rng = Xorshift::new(4);
    let mut x = vec![0.0f32; tiny.hidden * tokens];
    let mut target = vec![0.0f32; tiny.hidden * tokens];
    fill_uniform(&mut x, &mut rng, -0.5, 0.5);
    fill_uniform(&mut target, &mut rng, -0.5, 0.5);
    let t = pl_bench::time_it(3, || {
        let _ = enc.train_step(&x, &target, tokens, 0.01, pool);
    });
    header("Fig.9 measured host (tiny BERT, fwd+bwd+sgd)", &["config", "steps/s"]);
    row(&["2x64x4h/32tok".into(), f1(1.0 / t)]);
}
