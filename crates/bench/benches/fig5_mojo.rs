//! Figure 5: FP32 GEMM with shapes from BERT/GPT/DLRM on a Xeon 8223CL
//! (AWS c5.4xlarge, 8 cores) — PARLOOPER vs Mojo-like.
//!
//! Paper shape: the 20-LOC PARLOOPER GEMM beats the hint-annotated Mojo
//! GEMM on every shape, geomean ~1.35x.

use pl_bench::baseline::{mojo_gemm_gflops, parlooper_gemm_gflops};
use pl_bench::{f1, f2, geomean, header, row};
use pl_perfmodel::Platform;
use pl_tensor::DType;

fn main() {
    // (M, N, K) per the paper's x-axis labels (MxNxK).
    let shapes: [(usize, usize, usize); 16] = [
        (1024, 256, 4096),
        (4096, 256, 1024),
        (1024, 256, 1024),
        (1024, 128, 4096),
        (4096, 128, 1024),
        (1024, 128, 1024),
        (768, 256, 768),
        (768, 128, 768),
        (3072, 128, 768),
        (768, 128, 3072),
        (3072, 256, 768),
        (768, 256, 3072),
        (768, 128, 2304),
        (2560, 1024, 1024),
        (1024, 1024, 512),
        (512, 1024, 256),
    ];
    let p = Platform::xeon_8223();
    let threads = p.total_cores();
    header(
        "Fig.5 FP32 GEMM, BERT/GPT/DLRM shapes, 8-core Xeon 8223CL [simulated]",
        &["MxNxK", "PARLOOPER", "Mojo-like", "speedup"],
    );
    let mut speedups = Vec::new();
    for &(m, n, k) in &shapes {
        let ours = parlooper_gemm_gflops(&p, threads, m, n, k, DType::F32);
        let mojo = mojo_gemm_gflops(&p, threads, m, n, k);
        speedups.push(ours / mojo);
        row(&[format!("{m}x{n}x{k}"), f1(ours), f1(mojo), format!("{}x", f2(ours / mojo))]);
    }
    println!("\nGeomean speedup: {}x (paper: 1.35x)", f2(geomean(&speedups)));
}
