//! Figure 10: block-sparse BERT-base inference.
//!
//! Left: BF16, BS=1, 8 cores — dense vs 80 % 8x8-block-sparse vs the
//! roofline assuming 5x faster contractions. Paper: sparse reaches 1.75x /
//! 1.95x / 2.79x over dense on SPR / GVT3 / Zen4, i.e. 71-88 % of roofline.
//! Right: FP32, BS=32, 24 cores vs DeepSparse-like (paper: 1.56x).

use pl_bench::baseline::{BERT_NON_CONTRACTION_FRACTION, DEEPSPARSE_ELEMENT_EFFICIENCY};
use pl_bench::{f1, f2, header, row};
use pl_dnn::BertConfig;
use pl_perfmodel::{roofline, Platform, WorkItem};
use pl_tensor::DType;

fn dense_seq_per_sec(
    p: &Platform,
    threads: usize,
    cfg: &BertConfig,
    dtype: DType,
    eff: f64,
) -> f64 {
    let tokens = cfg.seq / 2; // unpadded
    let flops = cfg.model_flops(tokens);
    let bytes = cfg.layers as f64 * cfg.layer_weight_bytes(dtype.size_of());
    1.0 / roofline::time_seconds(p, threads, dtype, WorkItem { flops, bytes }, eff)
}

fn main() {
    let cfg = BertConfig::base();
    let sparsity = 0.8;

    header(
        "Fig.10-L BERT-base BF16 inference BS=1, 8 cores [simulated]",
        &["platform", "dense seq/s", "sparse seq/s", "roofline", "% of roofline"],
    );
    // Per-platform utilization of the sparse kernel (AMX's long chains
    // lose more on 8x8 blocks; FMA platforms keep nearly all of it).
    for (platform, sparse_util) in
        [(Platform::spr(), 0.40), (Platform::gvt3(), 0.72), (Platform::zen4(), 0.90)]
    {
        let threads = 8; // latency-bound inference uses 8 cores (paper)
        let dense = dense_seq_per_sec(&platform, threads, &cfg, DType::Bf16, 0.7);
        let nc = BERT_NON_CONTRACTION_FRACTION;
        // Contractions keep (1-s)/util of their dense time; the rest of the
        // layer is unchanged.
        let sparse_time = (1.0 - nc) * ((1.0 - sparsity) / sparse_util) + nc;
        let sparse = dense / sparse_time;
        // Paper roofline: contractions exactly 5x faster, rest unchanged.
        let roof = dense / ((1.0 - nc) / 5.0 + nc);
        row(&[
            platform.name.to_string(),
            f1(dense),
            f1(sparse),
            f1(roof),
            format!("{}%", f1(100.0 * sparse / roof)),
        ]);
    }

    header(
        "Fig.10-R BERT-base FP32 BS=32, 24 cores (Xeon 8275CL) [simulated]",
        &["runtime", "seq/s"],
    );
    let p = Platform::xeon_8275();
    let dense = dense_seq_per_sec(&p, 24, &cfg, DType::F32, 0.7) * 32.0 / 8.0; // throughput mode
    let nc = BERT_NON_CONTRACTION_FRACTION;
    let ours = dense / ((1.0 - nc) * (1.0 - sparsity) / 0.9 + nc);
    let deepsparse = dense / ((1.0 - nc) * (1.0 - sparsity) / DEEPSPARSE_ELEMENT_EFFICIENCY + nc);
    row(&["Dense BERT".into(), f1(dense)]);
    row(&["PARLOOPER block-SpMM".into(), f1(ours)]);
    row(&["DeepSparse-like".into(), f1(deepsparse)]);
    println!("\nPARLOOPER vs DeepSparse-like: {}x (paper: 1.56x)", f2(ours / deepsparse));

    // Measured host check: dense vs 80% block-sparse tiny layer.
    use pl_dnn::sparse_bert::random_sparse_layer;
    use pl_runtime::global_pool;
    use pl_tensor::{fill_uniform, Xorshift};
    let pool = global_pool();
    let tiny = BertConfig { hidden: 128, heads: 4, intermediate: 256, layers: 1, seq: 32 };
    let (dense_l, sparse_l) = random_sparse_layer(tiny, 8, 0.8, 9);
    let tokens = 32;
    let mut x = vec![0.0f32; tiny.hidden * tokens];
    fill_uniform(&mut x, &mut Xorshift::new(10), -0.5, 0.5);
    let td = pl_bench::time_it(3, || {
        let _ = dense_l.forward(&x, tokens, pool);
    });
    let ts = pl_bench::time_it(3, || {
        let _ = sparse_l.forward(&x, tokens, pool);
    });
    header("Fig.10 measured host (tiny layer, 80% 8x8 sparsity)", &["variant", "ms", "speedup"]);
    row(&["dense".into(), f2(td * 1e3), "1.00x".into()]);
    row(&["block-sparse".into(), f2(ts * 1e3), format!("{}x", f2(td / ts))]);
}
