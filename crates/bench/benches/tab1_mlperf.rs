//! Table I: BERT time-to-train (MLPerf-v2.1) — 8 vs 16 SPR nodes, with the
//! DGX (8x A100) reference.
//!
//! Paper: 85.91 min (8 nodes), 47.26 min (16 nodes), 19.6 min (DGX).
//! Without a cluster we project from the simulated single-socket
//! throughput through the compute + allreduce strong-scaling model
//! (DESIGN.md substitution table).

use pl_bench::baseline::stack_eff;
use pl_bench::{f2, header, row};
use pl_dnn::BertConfig;
use pl_perfmodel::{roofline, Platform, ScalingModel, WorkItem};
use pl_tensor::DType;

fn main() {
    let cfg = BertConfig::large();
    let spr = Platform::spr();
    // Simulated single-socket fine-tuning throughput (as in fig9).
    let tokens = cfg.seq / 2;
    let flops = 3.0 * cfg.model_flops(tokens);
    let bytes = cfg.layers as f64 * cfg.layer_weight_bytes(2) * 3.0;
    let t_seq = roofline::time_seconds(
        &spr,
        spr.total_cores(),
        DType::Bf16,
        WorkItem { flops, bytes },
        stack_eff::PARLOOPER,
    );
    // MLPerf BERT closes in ~2.4e6 sequences (roughly; fixed for the
    // projection — only ratios matter for the reproduced shape).
    let sequences = 2.4e6;
    let work_socket_minutes = sequences * t_seq / 60.0;
    let model = ScalingModel {
        work_socket_minutes,
        sockets_per_node: 2,
        comm_minutes_per_hop: 0.02 * work_socket_minutes / 16.0,
    };
    header("Table I: BERT time-to-train [projected]", &["system", "minutes"]);
    let t8 = model.time_to_train(8);
    let t16 = model.time_to_train(16);
    row(&["8 nodes SPR (16 sockets)".into(), f2(t8)]);
    row(&["16 nodes SPR (32 sockets)".into(), f2(t16)]);
    // DGX reference: paper reports 16-node SPR within 2.4x of 8x A100.
    row(&["DGX (8x A100, ref ratio)".into(), f2(t16 / 2.4)]);
    println!(
        "\n8->16 node speedup: {:.2}x (paper: {:.2}x); scaling efficiency {:.0}%",
        t8 / t16,
        85.91 / 47.26,
        100.0 * model.scaling_efficiency(8, 16)
    );
}
