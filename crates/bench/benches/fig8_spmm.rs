//! Figure 8: BF16 Block-SpMM (2048^3) vs dense GEMM across sparsity levels
//! and block sizes, on SPR / GVT3 / Zen4.
//!
//! Paper shape: on SPR only large blocks (32x32) pay off — the AMX systolic
//! array needs accumulation chains of 32, so 4x4 blocks are capped at
//! 4/32 = 12.5 % of peak; on GVT3/Zen4 (FMA chains of 4 and 2) every block
//! size wins from ~10 % sparsity; max speedups ~5.3x (SPR), ~9.4x (GVT3),
//! ~9.8x (Zen4) at 90 %.

use pl_bench::{f1, header, row};
use pl_perfmodel::Platform;
use pl_tensor::DType;

/// Effective GFLOPS of the block-sparse kernel: dense-equivalent work over
/// the time of the non-zero contraction plus a per-platform overhead floor
/// (index traversal, partial tiles).
fn spmm_gflops(
    platform: &Platform,
    accum_chain: usize,
    block: usize,
    sparsity: f64,
    dense_gflops: f64,
) -> f64 {
    // Utilization of the accumulation pipeline for this block size.
    let util = (block as f64 / accum_chain as f64).min(1.0);
    let overhead = match platform.name {
        "SPR" => 0.09, // AMX tile configuration + small accumulation chains
        "GVT3" => 0.006,
        _ => 0.002,
    };
    let time_dense = 1.0 / dense_gflops;
    let time_sparse = time_dense * ((1.0 - sparsity) / util + overhead);
    1.0 / time_sparse
}

fn main() {
    let sparsities = [0.0, 0.1, 0.3, 0.5, 0.7, 0.8, 0.9];
    let blocks = [4usize, 8, 16, 32];
    for (platform, chain) in [
        (Platform::spr(), 32usize), // AMX: chains of 32
        (Platform::gvt3(), 4),      // BF16 dot-product: chains of 4
        (Platform::zen4(), 2),      // AVX512-BF16: chains of 2
    ] {
        let threads = platform.total_cores();
        // Dense baseline from the schedule model.
        let dense = pl_bench::baseline::parlooper_gemm_gflops(
            &platform,
            threads,
            2048,
            2048,
            2048,
            DType::Bf16,
        );
        header(
            &format!(
                "Fig.8 BF16 Block-SpMM 2048^3 on {} [simulated] (dense = {} GF)",
                platform.name,
                f1(dense)
            ),
            &["sparsity", "4x4", "8x8", "16x16", "32x32"],
        );
        for &sp in &sparsities {
            let mut cells = vec![format!("{:.0}%", sp * 100.0)];
            for &b in &blocks {
                cells.push(f1(spmm_gflops(&platform, chain, b, sp, dense)));
            }
            row(&cells);
        }
        let max_speedup = spmm_gflops(&platform, chain, 32, 0.9, dense) / dense;
        println!("Max speedup at 90% (32x32): {:.1}x", max_speedup);
    }

    // Measured host check: sparse vs dense at 512^3 FP32.
    use pl_kernels::{BlockSpmm, Gemm, GemmShape, GemmTuning, SpmmTuning};
    use pl_runtime::global_pool;
    use pl_tensor::{BcscMatrix, BlockedMatrix, VnniMatrix, Xorshift};
    let pool = global_pool();
    let s = 512usize;
    let (bm, bk, bn) = (32usize, 32usize, 16usize);
    let mut rng = Xorshift::new(5);
    let shape = GemmShape { m: s, n: s, k: s, bm, bn: 32, bk };
    let dense_kernel =
        Gemm::<f32, f32, f32>::new(shape, GemmTuning::default_parallel(shape.kb())).unwrap();
    let a_d = BlockedMatrix::<f32>::a_layout(s, s, bm, bk).unwrap();
    let b_d = BlockedMatrix::<f32>::b_layout(s, s, bk, 32).unwrap();
    let mut c_d = BlockedMatrix::<f32>::c_layout(s, s, bm, 32).unwrap();
    let t_dense =
        pl_bench::time_it(3, || dense_kernel.execute(&a_d, &b_d, &mut c_d, pool).unwrap());

    header(
        "Fig.8 measured host (FP32, 512^3, 32x32 blocks)",
        &["sparsity", "eff. GFLOPS", "vs dense"],
    );
    let dense_g = pl_bench::gflops(shape.flops() as f64, t_dense);
    row(&["dense".into(), f1(dense_g), "1.00x".into()]);
    for &sp in &[0.5, 0.9] {
        let a_s = BcscMatrix::<f32>::random(s, s, bm, bk, sp, &mut rng).unwrap();
        let b_s = VnniMatrix::<f32>::new(s, s, bn, 1).unwrap();
        let mut c_s = VnniMatrix::<f32>::new(s, s, bn, 1).unwrap();
        let kernel =
            BlockSpmm::new(s, s, s, bm, bk, bn, SpmmTuning::default_parallel(s / bk)).unwrap();
        let t = pl_bench::time_it(3, || kernel.execute(&a_s, &b_s, &mut c_s, pool).unwrap());
        let g = pl_bench::gflops(shape.flops() as f64, t);
        row(&[format!("{:.0}%", sp * 100.0), f1(g), format!("{:.2}x", g / dense_g)]);
    }
}
