//! Criterion micro-benchmarks of PARLOOPER itself: spec parsing, plan
//! construction (the "JIT"), plan-cache hits, and nest-walk overhead
//! versus a hand-written loop.

use criterion::{criterion_group, criterion_main, Criterion};
use parlooper::{LoopSpecs, ThreadedLoop};
use pl_runtime::ThreadPool;
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};

fn bench_loops(c: &mut Criterion) {
    let mut g = c.benchmark_group("parlooper");
    g.sample_size(20);

    g.bench_function("parse_spec", |b| {
        b.iter(|| parlooper::spec::parse(black_box("bcaBCb @ schedule(dynamic,1)"), 3).unwrap())
    });

    let specs = vec![
        LoopSpecs::blocked(0, 32, 1, vec![8]),
        LoopSpecs::blocked(0, 32, 1, vec![8, 4]),
        LoopSpecs::blocked(0, 32, 1, vec![4]),
    ];
    g.bench_function("plan_cache_hit", |b| {
        // First call compiles; the iterations measure cached lookups.
        let _ = ThreadedLoop::new(&specs, "bcaBCb").unwrap();
        b.iter(|| ThreadedLoop::new(black_box(&specs), "bcaBCb").unwrap())
    });

    let pool = ThreadPool::new(2);
    let tl =
        ThreadedLoop::new(&[LoopSpecs::new(0, 64, 1), LoopSpecs::new(0, 64, 1)], "AB").unwrap();
    g.bench_function("nest_walk_4096_tiles", |b| {
        b.iter(|| {
            let count = AtomicUsize::new(0);
            tl.run_on(&pool, |ind| {
                count.fetch_add(ind[0] + ind[1], Ordering::Relaxed);
            });
            black_box(count.load(Ordering::Relaxed))
        })
    });
    g.bench_function("raw_loop_4096_tiles", |b| {
        b.iter(|| {
            let count = AtomicUsize::new(0);
            pool.parallel(|ctx| {
                for i in pl_runtime::block_partition(64, ctx.nthreads(), ctx.tid()) {
                    for j in 0..64 {
                        count.fetch_add(i + j, Ordering::Relaxed);
                    }
                }
            });
            black_box(count.load(Ordering::Relaxed))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_loops);
criterion_main!(benches);
