//! Figure 3: MLP with bias add + ReLU activations, BF16, N=512.
//!
//! Paper shape: efficiency (fraction of compute peak) rises with weight
//! size; SPR saturates earlier (LLC-bound activation hand-off) while
//! GVT3/Zen4 exceed 90% of their much lower peaks; SPR is up to 3.3x GVT3
//! and 6.6x Zen4 in absolute GFLOPS.

use pl_bench::{f1, header, row};
use pl_perfmodel::{GemmModelSpec, Platform};
use pl_tensor::DType;

fn main() {
    // (M=K, layers) per the paper's x-axis.
    let configs = [(512usize, 200usize), (1024, 100), (2048, 20), (4096, 20), (8192, 20)];
    let n = 512usize;
    for platform in [Platform::spr(), Platform::gvt3(), Platform::zen4()] {
        let threads = platform.total_cores();
        let peak = platform.peak_gflops(DType::Bf16, threads);
        header(
            &format!("Fig.3 MLP (bias+ReLU, BF16, N=512) on {} [simulated]", platform.name),
            &["MxKx(layers)", "GFLOPS", "% of peak"],
        );
        for &(mk, layers) in &configs {
            let b = pl_bench::baseline::model_block(mk);
            let spec = GemmModelSpec {
                m: mk,
                n,
                k: mk,
                bm: b,
                bn: pl_bench::baseline::model_block(n),
                bk: b,
                k_step: mk / b,
                spec: "BCa".into(),
                blocks: [vec![], vec![], vec![]],
                dtype: DType::Bf16,
            };
            let pred = spec.predict(&platform, threads).expect("predict");
            // Cascading layers: per-layer time + activation hand-off between
            // layers through the shared level (SPR's limiter).
            let act_bytes = (mk * n * 2) as f64;
            let llc_bw = platform.caches.last().map(|c| c.bw_bytes_per_cycle).unwrap_or(16.0)
                * threads as f64
                * platform.cores[0].freq_ghz
                * 1e9;
            let handoff = act_bytes / llc_bw;
            let per_layer = pred.seconds + handoff;
            let total_flops = spec.flops() * layers as f64;
            let g = total_flops / (per_layer * layers as f64) / 1e9;
            row(&[
                format!("{mk}x512x{mk} ({layers})"),
                f1(g),
                format!("{}%", f1(100.0 * g / peak)),
            ]);
        }
    }

    // Measured host sanity: a small real MLP through the fused kernels.
    use pl_kernels::{Activation, Mlp};
    use pl_runtime::global_pool;
    use pl_tensor::BlockedMatrix;
    let pool = global_pool();
    let mlp =
        Mlp::<f32>::new(&[256, 256, 256], 128, 32, 32, "aBC", Activation::Relu, 3).expect("mlp");
    let x = BlockedMatrix::<f32>::b_layout(256, 128, 32, 32).unwrap();
    let t = pl_bench::time_it(3, || {
        let _ = mlp.forward(&x, pool).unwrap();
    });
    header("Fig.3 measured host sanity", &["MLP", "GFLOPS"]);
    row(&["256-256-256/N=128".into(), f1(pl_bench::gflops(mlp.flops() as f64, t))]);
}
