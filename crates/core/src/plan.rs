//! Loop-nest plan construction and execution.
//!
//! This is the stand-in for the paper's runtime C++ code generation
//! (Listing 2): a parsed spec string plus the logical [`LoopSpecs`] resolve
//! into a [`LoopPlan`] — a small IR describing every nesting level, its
//! step, its parallelization and its barriers. A generic walker then
//! executes the plan inside one parallel region; since the body runs at TPP
//! tile granularity, the interpretation overhead is amortized exactly like
//! the paper's JIT dispatch (see `DESIGN.md`, substitution table).

use crate::spec::{GridAxisSpec, LoopSpecs, ParsedSpec, Schedule, SpecError, Term};
use pl_runtime::grid::GridAxis;
use pl_runtime::{block_partition, DynamicQueue, GridDecomp, StaticChunks, WorkerCtx};
use std::sync::OnceLock;

/// Parallelism classification of a whole plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ParKind {
    /// Fully sequential nest (still executed by thread 0 of the region).
    None,
    /// PAR-MODE 1: one consecutive group of worksharing levels.
    OmpFor {
        /// First level of the collapse group.
        group_start: usize,
        /// Number of collapsed levels.
        group_len: usize,
        /// Worksharing schedule.
        schedule: Schedule,
    },
    /// PAR-MODE 2: explicit thread grid; levels carry their axis.
    Grid(GridDecomp),
}

/// One nesting level of the instantiated loop.
#[derive(Debug, Clone)]
pub(crate) struct Level {
    /// Which logical loop this level iterates.
    pub loop_idx: usize,
    /// Step at this level.
    pub step: usize,
    /// Level index of the previous (outer) occurrence of the same loop.
    pub parent_level: Option<usize>,
    /// Grid parallelization (PAR-MODE 2).
    pub grid: Option<(GridAxis, usize)>,
    /// Member of the PAR-MODE 1 collapse group.
    pub in_collapse: bool,
    /// Team barrier once this level completes (spec `|`).
    pub barrier_after: bool,
    /// Upper bound on this level's trip count (for encounter numbering).
    pub max_trips: usize,
}

/// A compiled loop-nest instantiation.
#[derive(Debug, Clone)]
pub struct LoopPlan {
    pub(crate) levels: Vec<Level>,
    pub(crate) par: ParKind,
    pub(crate) specs: Vec<LoopSpecs>,
    /// For each logical loop, the level whose value the body observes
    /// (its innermost occurrence).
    pub(crate) leaf_slot: Vec<usize>,
    /// Product of max trip counts of levels above the collapse group
    /// (bounds the number of worksharing encounters).
    pub(crate) encounters: usize,
    spec_string: String,
}

impl LoopPlan {
    /// Builds a plan from a parsed spec and the loop declarations,
    /// performing all legality checks that do not depend on the team size.
    pub(crate) fn build(
        parsed: &ParsedSpec,
        specs: &[LoopSpecs],
        spec_string: &str,
    ) -> Result<Self, SpecError> {
        for (i, s) in specs.iter().enumerate() {
            if s.step == 0 || s.end <= s.start {
                return Err(SpecError::DegenerateLoop(i));
            }
        }
        // Occurrence counts and step assignment (RULE 1).
        let occurrences: Vec<usize> = (0..specs.len())
            .map(|l| parsed.terms.iter().filter(|t| t.loop_idx == l).count())
            .collect();
        for (l, &occ) in occurrences.iter().enumerate() {
            if occ == 0 {
                continue;
            }
            let needed = occ - 1;
            if specs[l].block_steps.len() < needed {
                return Err(SpecError::MissingBlockSteps {
                    loop_idx: l,
                    occurrences: occ,
                    provided: specs[l].block_steps.len(),
                });
            }
            // Perfect nesting: each blocking divides the previous, and the
            // base step divides the innermost blocking.
            let mut chain: Vec<usize> = specs[l].block_steps[..needed].to_vec();
            chain.push(specs[l].step);
            for w in chain.windows(2) {
                if w[1] == 0 || w[0] % w[1] != 0 {
                    return Err(SpecError::ImperfectNesting {
                        loop_idx: l,
                        outer: w[0],
                        inner: w[1],
                    });
                }
            }
        }
        // Collapse rectangularity: when a loop has several occurrences
        // inside one collapse group, the linearized space must not depend on
        // the outer member's position, so every non-innermost occurrence
        // step must divide the loop's whole span (OpenMP collapse demands
        // rectangular spaces for the same reason). Checked after the group
        // is identified below.

        // A loop that never appears would silently not iterate; treat as a
        // degenerate spec (the kernel author forgot it).
        if let Some(missing) = occurrences.iter().position(|&o| o == 0) {
            return Err(SpecError::UnknownLoop((b'a' + missing as u8) as char, specs.len()));
        }

        // Parallel-mode classification (RULE 2).
        let par_terms: Vec<(usize, &Term)> =
            parsed.terms.iter().enumerate().filter(|(_, t)| t.parallel).collect();
        let any_grid = par_terms.iter().any(|(_, t)| t.grid.is_some());
        let all_grid = par_terms.iter().all(|(_, t)| t.grid.is_some());
        let par = if par_terms.is_empty() {
            ParKind::None
        } else if any_grid {
            if !all_grid {
                return Err(SpecError::MixedParallelModes);
            }
            let mut r = None;
            let mut c = None;
            let mut lyr = None;
            for (_, t) in &par_terms {
                let (axis, ways) = t.grid.unwrap();
                let slot = match axis {
                    GridAxisSpec::R => &mut r,
                    GridAxisSpec::C => &mut c,
                    GridAxisSpec::L => &mut lyr,
                };
                if slot.is_some() {
                    return Err(SpecError::DuplicateGridAxis(match axis {
                        GridAxisSpec::R => 'R',
                        GridAxisSpec::C => 'C',
                        GridAxisSpec::L => 'L',
                    }));
                }
                *slot = Some(ways);
            }
            ParKind::Grid(GridDecomp::from_ways(r, c, lyr))
        } else {
            let first = par_terms[0].0;
            let len = par_terms.len();
            if par_terms.last().unwrap().0 != first + len - 1 {
                return Err(SpecError::NonConsecutiveParallel);
            }
            ParKind::OmpFor { group_start: first, group_len: len, schedule: parsed.schedule }
        };

        // Build levels with per-occurrence steps and parent links.
        let mut seen: Vec<usize> = vec![0; specs.len()];
        let mut last_level_of: Vec<Option<usize>> = vec![None; specs.len()];
        let mut levels = Vec::with_capacity(parsed.terms.len());
        for (li, t) in parsed.terms.iter().enumerate() {
            let l = t.loop_idx;
            let occ = seen[l];
            seen[l] += 1;
            let total_occ = occurrences[l];
            let step = if occ + 1 == total_occ { specs[l].step } else { specs[l].block_steps[occ] };
            let parent_level = last_level_of[l];
            let span = match parent_level {
                None => specs[l].end - specs[l].start,
                Some(p) => levels_step(&levels, p),
            };
            let max_trips = span.div_ceil(step).max(1);
            let grid = match (&par, t.grid) {
                (ParKind::Grid(_), Some((axis, ways))) => Some((
                    match axis {
                        GridAxisSpec::R => GridAxis::Row,
                        GridAxisSpec::C => GridAxis::Col,
                        GridAxisSpec::L => GridAxis::Layer,
                    },
                    ways,
                )),
                _ => None,
            };
            let in_collapse = matches!(
                par,
                ParKind::OmpFor { group_start, group_len, .. }
                    if li >= group_start && li < group_start + group_len
            );
            levels.push(Level {
                loop_idx: l,
                step,
                parent_level,
                grid,
                in_collapse,
                barrier_after: t.barrier_after,
                max_trips,
            });
            last_level_of[l] = Some(li);
        }

        // Enforce collapse rectangularity (see note above): an in-group
        // occurrence whose parent occurrence is also in the group requires
        // the loop's span to be a multiple of the parent step, otherwise
        // the linearized extent would vary with the outer member's value.
        if let ParKind::OmpFor { group_start, group_len, .. } = &par {
            for li in *group_start..group_start + group_len {
                if let Some(p) = levels[li].parent_level {
                    if p >= *group_start {
                        let spec: &LoopSpecs = &specs[levels[li].loop_idx];
                        if !(spec.end - spec.start).is_multiple_of(levels[p].step) {
                            return Err(SpecError::NonRectangularCollapse(levels[li].loop_idx));
                        }
                    }
                }
            }
        }

        // Barrier legality: no enclosing parallel level; in a collapse group
        // only on the last member.
        for (li, lvl) in levels.iter().enumerate() {
            if !lvl.barrier_after {
                continue;
            }
            if lvl.in_collapse {
                let is_last = match &par {
                    ParKind::OmpFor { group_start, group_len, .. } => {
                        li == group_start + group_len - 1
                    }
                    _ => false,
                };
                if !is_last {
                    return Err(SpecError::BarrierInsideCollapse);
                }
            }
            let enclosing_parallel = levels[..li].iter().enumerate().any(|(lj, e)| {
                let in_my_group = lvl.in_collapse && e.in_collapse;
                (e.grid.is_some() || e.in_collapse) && !in_my_group && lj < li
            });
            if enclosing_parallel {
                return Err(SpecError::BarrierBelowParallel);
            }
        }

        let leaf_slot: Vec<usize> =
            (0..specs.len()).map(|l| last_level_of[l].expect("every loop occurs")).collect();

        let encounters = match &par {
            ParKind::OmpFor { group_start, .. } => {
                levels[..*group_start].iter().map(|l| l.max_trips).product::<usize>().max(1)
            }
            _ => 1,
        };

        Ok(LoopPlan {
            levels,
            par,
            specs: specs.to_vec(),
            leaf_slot,
            encounters,
            spec_string: spec_string.to_string(),
        })
    }

    /// The spec string this plan was generated from.
    pub fn spec_string(&self) -> &str {
        &self.spec_string
    }

    /// Validates team-size-dependent constraints (grid product).
    pub(crate) fn check_team(&self, nthreads: usize) -> Result<(), SpecError> {
        if let ParKind::Grid(g) = &self.par {
            if g.size() != nthreads {
                return Err(SpecError::GridSizeMismatch { grid: g.size(), team: nthreads });
            }
        }
        Ok(())
    }

    /// Executes the plan on the given worker context (one call per team
    /// member; the walker partitions work by `ctx` identity).
    pub(crate) fn execute_member(
        &self,
        ctx: &WorkerCtx,
        queues: &WorkQueues,
        body: &(dyn Fn(&[usize]) + Sync),
    ) {
        let mut vals = vec![0usize; self.levels.len()];
        let mut ind = vec![0usize; self.specs.len()];
        self.walk(0, 0, &mut vals, &mut ind, ctx.tid(), ctx.nthreads(), Some(ctx), queues, &body);
    }

    /// Single-threaded schedule simulation: returns, for the virtual thread
    /// `tid` of `nthreads`, the ordered list of body-index tuples it would
    /// execute. Used by the performance model (paper §II-E) to build
    /// per-thread tensor-slice traces without running the kernel.
    ///
    /// Dynamic scheduling is nondeterministic in reality; the simulation
    /// assumes round-robin chunk ownership instead.
    pub fn simulate_member(&self, tid: usize, nthreads: usize) -> Vec<Vec<usize>> {
        let queues = WorkQueues::empty();
        let out = std::cell::RefCell::new(Vec::new());
        let sink = |idx: &[usize]| out.borrow_mut().push(idx.to_vec());
        let mut vals = vec![0usize; self.levels.len()];
        let mut ind = vec![0usize; self.specs.len()];
        self.walk(0, 0, &mut vals, &mut ind, tid, nthreads, None, &queues, &sink);
        out.into_inner()
    }

    /// Recursive walker. `ctx == None` means simulation mode (no barriers,
    /// dynamic scheduling degraded to deterministic round-robin).
    #[allow(clippy::too_many_arguments)]
    fn walk<F: Fn(&[usize])>(
        &self,
        li: usize,
        enc: usize,
        vals: &mut Vec<usize>,
        ind: &mut Vec<usize>,
        tid: usize,
        nthreads: usize,
        ctx: Option<&WorkerCtx>,
        queues: &WorkQueues,
        body: &F,
    ) {
        if li == self.levels.len() {
            for (l, slot) in self.leaf_slot.iter().enumerate() {
                ind[l] = vals[*slot];
            }
            body(ind);
            return;
        }
        let lvl = &self.levels[li];

        // PAR-MODE 1 collapse group: distribute the linearized local space.
        if lvl.in_collapse {
            let (group_len, schedule) = match &self.par {
                ParKind::OmpFor { group_len, schedule, .. } => (*group_len, *schedule),
                _ => unreachable!("collapse member without OmpFor plan"),
            };
            let mut counts = [0usize; 26];
            let mut total = 1usize;
            for (g, count) in counts.iter_mut().enumerate().take(group_len) {
                let (lo, hi, step) = self.level_range(li + g, vals);
                let trips = hi.saturating_sub(lo).div_ceil(step);
                *count = trips;
                total *= trips;
            }
            let run_linear = |lin: usize, vals: &mut Vec<usize>, ind: &mut Vec<usize>| {
                // Mixed-radix decode, innermost member fastest (OpenMP
                // collapse order), then materialize values in nesting order
                // so inner members see fresh outer values of the same loop
                // (rectangularity is validated at build time).
                let mut rest = lin;
                let mut its = [0usize; 26];
                for g in (0..group_len).rev() {
                    its[g] = rest % counts[g].max(1);
                    rest /= counts[g].max(1);
                }
                for g in 0..group_len {
                    let (lo, _, step) = self.level_range(li + g, vals);
                    vals[li + g] = lo + its[g] * step;
                }
                self.walk(li + group_len, enc, vals, ind, tid, nthreads, ctx, queues, body);
            };
            match schedule {
                Schedule::Static => {
                    for lin in block_partition(total, nthreads, tid) {
                        run_linear(lin, vals, ind);
                    }
                }
                Schedule::StaticChunk(c) => {
                    for r in StaticChunks::new(total, c, tid, nthreads) {
                        for lin in r {
                            run_linear(lin, vals, ind);
                        }
                    }
                }
                Schedule::Dynamic(c) => {
                    if ctx.is_some() {
                        let q = queues.get(enc, total, c);
                        while let Some(r) = q.next() {
                            for lin in r {
                                run_linear(lin, vals, ind);
                            }
                        }
                    } else {
                        // Simulation: deterministic round-robin chunks.
                        for r in StaticChunks::new(total, c, tid, nthreads) {
                            for lin in r {
                                run_linear(lin, vals, ind);
                            }
                        }
                    }
                }
            }
            if self.levels[li + group_len - 1].barrier_after {
                if let Some(c) = ctx {
                    c.barrier();
                }
            }
            return;
        }

        // Grid-parallel level: block partition of the trip space by the
        // thread's coordinate along the level's axis.
        let (lo, hi, step) = self.level_range(li, vals);
        let trips = (hi.saturating_sub(lo)).div_ceil(step);
        if let Some((axis, _ways)) = lvl.grid {
            let grid = match &self.par {
                ParKind::Grid(g) => g,
                _ => unreachable!("grid level without grid plan"),
            };
            for it in grid.partition(tid, axis, trips) {
                vals[li] = lo + it * step;
                self.walk(li + 1, enc, vals, ind, tid, nthreads, ctx, queues, body);
            }
        } else {
            // Sequential level, replicated on every team member.
            for it in 0..trips {
                vals[li] = lo + it * step;
                let child_enc = enc * lvl.max_trips + it;
                self.walk(li + 1, child_enc, vals, ind, tid, nthreads, ctx, queues, body);
            }
        }
        if lvl.barrier_after {
            if let Some(c) = ctx {
                c.barrier();
            }
        }
    }

    /// The local `(lo, hi, step)` range of a level given enclosing values.
    #[inline]
    fn level_range(&self, li: usize, vals: &[usize]) -> (usize, usize, usize) {
        let lvl = &self.levels[li];
        let spec = &self.specs[lvl.loop_idx];
        match lvl.parent_level {
            None => (spec.start, spec.end, lvl.step),
            Some(p) => {
                let lo = vals[p];
                let hi = (lo + self.levels[p].step).min(spec.end);
                (lo, hi, lvl.step)
            }
        }
    }
}

fn levels_step(levels: &[Level], idx: usize) -> usize {
    levels[idx].step
}

/// Per-run dynamic-scheduling queues, one per worksharing encounter.
pub(crate) struct WorkQueues {
    slots: Vec<OnceLock<DynamicQueue>>,
}

impl WorkQueues {
    /// Queue set for simulation (never consulted: `ctx == None`).
    pub(crate) fn empty() -> Self {
        WorkQueues { slots: Vec::new() }
    }

    pub(crate) fn new(plan: &LoopPlan) -> Self {
        let n = match &plan.par {
            ParKind::OmpFor { schedule: Schedule::Dynamic(_), .. } => {
                assert!(
                    plan.encounters <= (1 << 20),
                    "dynamic schedule with {} worksharing encounters; use static",
                    plan.encounters
                );
                plan.encounters
            }
            _ => 0,
        };
        WorkQueues { slots: (0..n).map(|_| OnceLock::new()).collect() }
    }

    fn get(&self, enc: usize, total: usize, chunk: usize) -> &DynamicQueue {
        self.slots[enc].get_or_init(|| DynamicQueue::new(total, chunk))
    }
}
