//! `loop_spec_string` grammar, parsing and legality validation
//! (paper §II-B, RULE 1 and RULE 2).
//!
//! ```text
//! spec      := term+ ( '@' directive )?
//! term      := letter grid? barrier?
//! letter    := 'a'..'z' | 'A'..'Z'          (uppercase => parallelize)
//! grid      := '{' ('R'|'C'|'L') ':' uint '}' (PAR-MODE 2 axis:ways)
//! barrier   := '|'
//! directive := 'schedule' '(' ('static'|'dynamic') (',' uint)? ')'
//! ```
//!
//! RULE 1 — the order of letters is the nesting order; the number of
//! occurrences of a letter is 1 + the number of times that logical loop is
//! blocked; blocking sizes come from the loop's blocking list outermost
//! first, the innermost occurrence using the loop's base step; blockings
//! must nest perfectly (each dividing the previous).
//!
//! RULE 2 — an uppercase letter parallelizes that nesting level. PAR-MODE 1
//! (OpenMP-style): all uppercase letters must be consecutive and form one
//! collapse group. PAR-MODE 2 (explicit grids): every uppercase letter
//! carries `{axis:ways}` and the grid sizes must multiply to the team size.

use std::fmt;

/// Specification of one logical loop (paper Listing 1, lines 6-8).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LoopSpecs {
    /// Inclusive lower bound.
    pub start: usize,
    /// Exclusive upper bound.
    pub end: usize,
    /// Innermost step (the computation's tile extent along this loop).
    pub step: usize,
    /// Optional blocking steps, outermost first (`{l1_step, l0_step}`).
    pub block_steps: Vec<usize>,
}

impl LoopSpecs {
    /// A loop `start..end` with step `step` and no blocking.
    pub fn new(start: usize, end: usize, step: usize) -> Self {
        LoopSpecs { start, end, step, block_steps: Vec::new() }
    }

    /// A loop with blocking steps, outermost first.
    pub fn blocked(start: usize, end: usize, step: usize, block_steps: Vec<usize>) -> Self {
        LoopSpecs { start, end, step, block_steps }
    }

    /// Logical trip count at the innermost step.
    pub fn trip_count(&self) -> usize {
        (self.end - self.start).div_ceil(self.step)
    }
}

/// Thread-grid axis for PAR-MODE 2 (`{R:16}` etc.).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GridAxisSpec {
    /// Rows of the logical thread grid.
    R,
    /// Columns.
    C,
    /// Layers (3-D decompositions).
    L,
}

/// Loop schedule requested via the `@` directive suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// `#pragma omp for` default: contiguous static blocks.
    Static,
    /// `schedule(static, chunk)`: round-robin chunks.
    StaticChunk(usize),
    /// `schedule(dynamic, chunk)`: work-stealing chunks.
    Dynamic(usize),
}

/// One parsed term of the spec string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Term {
    /// Logical loop index (0 = `a`).
    pub loop_idx: usize,
    /// Parallelize this nesting level.
    pub parallel: bool,
    /// PAR-MODE 2 grid annotation.
    pub grid: Option<(GridAxisSpec, usize)>,
    /// `|` after this term: team barrier when the level completes.
    pub barrier_after: bool,
}

/// A fully parsed spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedSpec {
    /// Nest terms in nesting order.
    pub terms: Vec<Term>,
    /// Requested worksharing schedule (PAR-MODE 1 only).
    pub schedule: Schedule,
}

/// Spec-string and legality errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// Empty spec string.
    Empty,
    /// Character outside the declared loop range.
    UnknownLoop(char, usize),
    /// Unparseable grid annotation or directive.
    Syntax(String),
    /// Loop blocked more times than blocking steps provided.
    MissingBlockSteps {
        /// Offending loop index.
        loop_idx: usize,
        /// Occurrences in the spec string.
        occurrences: usize,
        /// Provided blocking steps.
        provided: usize,
    },
    /// Blocking steps do not nest perfectly.
    ImperfectNesting {
        /// Offending loop index.
        loop_idx: usize,
        /// The outer step.
        outer: usize,
        /// The inner step that fails to divide it.
        inner: usize,
    },
    /// A loop has step 0 or an empty range.
    DegenerateLoop(usize),
    /// Uppercase letters are not consecutive (PAR-MODE 1 needs one group).
    NonConsecutiveParallel,
    /// A spec mixes `{axis:ways}` grids with plain uppercase letters.
    MixedParallelModes,
    /// Grid ways along the axes do not multiply to the team size.
    GridSizeMismatch {
        /// Product of the requested ways.
        grid: usize,
        /// Team size.
        team: usize,
    },
    /// The same grid axis is used by two loops.
    DuplicateGridAxis(char),
    /// `|` attached below a parallelized level (would deadlock).
    BarrierBelowParallel,
    /// `|` attached to a non-final member of a collapse group.
    BarrierInsideCollapse,
    /// A loop blocked inside a collapse group whose span is not divisible
    /// by the outer blocking (the linearized space would be ragged).
    NonRectangularCollapse(usize),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Empty => write!(f, "empty loop_spec_string"),
            SpecError::UnknownLoop(c, n) => {
                write!(f, "loop character '{c}' outside the {n} declared loops")
            }
            SpecError::Syntax(s) => write!(f, "syntax error: {s}"),
            SpecError::MissingBlockSteps { loop_idx, occurrences, provided } => write!(
                f,
                "loop {} appears {occurrences} times but has only {provided} blocking steps",
                (b'a' + *loop_idx as u8) as char
            ),
            SpecError::ImperfectNesting { loop_idx, outer, inner } => write!(
                f,
                "loop {}: blocking {inner} does not divide {outer}",
                (b'a' + *loop_idx as u8) as char
            ),
            SpecError::DegenerateLoop(i) => {
                write!(f, "loop {} has a zero step or empty range", (b'a' + *i as u8) as char)
            }
            SpecError::NonConsecutiveParallel => {
                write!(f, "parallel letters must be consecutive (one collapse group)")
            }
            SpecError::MixedParallelModes => {
                write!(f, "cannot mix OpenMP-style and grid-style parallelism")
            }
            SpecError::GridSizeMismatch { grid, team } => {
                write!(f, "thread grid of {grid} ways does not match team of {team}")
            }
            SpecError::DuplicateGridAxis(c) => write!(f, "grid axis {c} used twice"),
            SpecError::BarrierBelowParallel => {
                write!(f, "barrier below a parallelized level would deadlock")
            }
            SpecError::BarrierInsideCollapse => {
                write!(f, "barrier must follow the last letter of a collapse group")
            }
            SpecError::NonRectangularCollapse(i) => write!(
                f,
                "loop {} is blocked inside a collapse group but its span is not divisible by the outer blocking",
                (b'a' + *i as u8) as char
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// Parses a spec string against `num_loops` declared loops.
pub fn parse(spec: &str, num_loops: usize) -> Result<ParsedSpec, SpecError> {
    let (loops_part, directive_part) = match spec.find('@') {
        Some(i) => (&spec[..i], Some(spec[i + 1..].trim())),
        None => (spec, None),
    };
    let mut terms: Vec<Term> = Vec::new();
    let mut chars = loops_part.chars().peekable();
    while let Some(ch) = chars.next() {
        if ch.is_whitespace() {
            continue;
        }
        if ch == '|' {
            match terms.last_mut() {
                Some(t) => t.barrier_after = true,
                None => return Err(SpecError::Syntax("leading '|'".into())),
            }
            continue;
        }
        if !ch.is_ascii_alphabetic() {
            return Err(SpecError::Syntax(format!("unexpected character '{ch}'")));
        }
        let parallel = ch.is_ascii_uppercase();
        let lower = ch.to_ascii_lowercase();
        let loop_idx = (lower as u8 - b'a') as usize;
        if loop_idx >= num_loops {
            return Err(SpecError::UnknownLoop(ch, num_loops));
        }
        let mut grid = None;
        if chars.peek() == Some(&'{') {
            chars.next();
            let body: String = chars.by_ref().take_while(|&c| c != '}').collect();
            let (axis_s, ways_s) = body
                .split_once(':')
                .ok_or_else(|| SpecError::Syntax(format!("bad grid '{{{body}}}'")))?;
            let axis = match axis_s.trim() {
                "R" => GridAxisSpec::R,
                "C" => GridAxisSpec::C,
                "L" => GridAxisSpec::L,
                other => return Err(SpecError::Syntax(format!("bad grid axis '{other}'"))),
            };
            let ways: usize = ways_s
                .trim()
                .parse()
                .map_err(|_| SpecError::Syntax(format!("bad grid ways '{ways_s}'")))?;
            if ways == 0 {
                return Err(SpecError::Syntax("grid ways must be positive".into()));
            }
            if !parallel {
                return Err(SpecError::Syntax(
                    "grid annotation requires an uppercase letter".into(),
                ));
            }
            grid = Some((axis, ways));
        }
        terms.push(Term { loop_idx, parallel, grid, barrier_after: false });
    }
    if terms.is_empty() {
        return Err(SpecError::Empty);
    }

    let schedule = match directive_part {
        None | Some("") => Schedule::Static,
        Some(d) => parse_directive(d)?,
    };

    Ok(ParsedSpec { terms, schedule })
}

fn parse_directive(d: &str) -> Result<Schedule, SpecError> {
    let d = d.trim();
    let inner = d
        .strip_prefix("schedule")
        .map(str::trim)
        .and_then(|r| r.strip_prefix('('))
        .and_then(|r| r.strip_suffix(')'))
        .ok_or_else(|| SpecError::Syntax(format!("bad directive '{d}'")))?;
    let mut parts = inner.split(',').map(str::trim);
    let kind = parts.next().unwrap_or("");
    let chunk = match parts.next() {
        None => None,
        Some(c) => {
            Some(c.parse::<usize>().map_err(|_| SpecError::Syntax(format!("bad chunk '{c}'")))?)
        }
    };
    if parts.next().is_some() {
        return Err(SpecError::Syntax(format!("bad directive '{d}'")));
    }
    match kind {
        "static" => Ok(chunk.map_or(Schedule::Static, Schedule::StaticChunk)),
        "dynamic" => Ok(Schedule::Dynamic(chunk.unwrap_or(1))),
        other => Err(SpecError::Syntax(format!("unknown schedule '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example_bca_bcb_string() {
        let p = parse("bcaBCb", 3).unwrap();
        let letters: Vec<(usize, bool)> =
            p.terms.iter().map(|t| (t.loop_idx, t.parallel)).collect();
        assert_eq!(
            letters,
            vec![(1, false), (2, false), (0, false), (1, true), (2, true), (1, false)]
        );
        assert_eq!(p.schedule, Schedule::Static);
    }

    #[test]
    fn parses_grid_spec_from_listing3() {
        let p = parse("bC{R:16}aB{C:4}cb", 3).unwrap();
        assert_eq!(p.terms[1].grid, Some((GridAxisSpec::R, 16)));
        assert!(p.terms[1].parallel);
        assert_eq!(p.terms[3].grid, Some((GridAxisSpec::C, 4)));
    }

    #[test]
    fn parses_dynamic_directive() {
        let p = parse("bcaBCb @ schedule(dynamic, 1)", 3).unwrap();
        assert_eq!(p.schedule, Schedule::Dynamic(1));
        let p2 = parse("abc@schedule(static,4)", 3).unwrap();
        assert_eq!(p2.schedule, Schedule::StaticChunk(4));
        let p3 = parse("abc@schedule(dynamic)", 3).unwrap();
        assert_eq!(p3.schedule, Schedule::Dynamic(1));
    }

    #[test]
    fn parses_barrier() {
        let p = parse("aB|c", 3).unwrap();
        assert!(p.terms[1].barrier_after);
        assert!(!p.terms[0].barrier_after);
    }

    #[test]
    fn rejects_unknown_loops_and_garbage() {
        assert!(matches!(parse("abd", 3), Err(SpecError::UnknownLoop('d', 3))));
        assert!(matches!(parse("", 3), Err(SpecError::Empty)));
        assert!(matches!(parse("a+b", 3), Err(SpecError::Syntax(_))));
        assert!(matches!(parse("|ab", 3), Err(SpecError::Syntax(_))));
        assert!(matches!(parse("a{R:4}b", 3), Err(SpecError::Syntax(_))));
        assert!(matches!(parse("A{Q:4}b", 3), Err(SpecError::Syntax(_))));
        assert!(matches!(parse("ab@schedule(guided)", 3), Err(SpecError::Syntax(_))));
        assert!(matches!(parse("ab@sched(static)", 3), Err(SpecError::Syntax(_))));
    }

    #[test]
    fn whitespace_is_tolerated_between_terms() {
        let p = parse("b c a", 3).unwrap();
        assert_eq!(p.terms.len(), 3);
    }

    #[test]
    fn trip_count_rounds_up() {
        assert_eq!(LoopSpecs::new(0, 10, 3).trip_count(), 4);
        assert_eq!(LoopSpecs::new(0, 9, 3).trip_count(), 3);
        assert_eq!(LoopSpecs::new(2, 10, 4).trip_count(), 2);
    }
}
