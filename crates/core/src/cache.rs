//! Plan cache — "PARLOOPER uses internally caching schemes to avoid JIT
//! overheads whenever possible" (paper §I): requesting a loop nest with the
//! same `loop_spec_string` (and the same loop declarations) returns the
//! already-compiled plan.

use crate::plan::LoopPlan;
use crate::spec::{parse, LoopSpecs, SpecError};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Cache hit/miss statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Plans served from the cache.
    pub hits: u64,
    /// Plans compiled.
    pub misses: u64,
    /// Live plans.
    pub entries: usize,
}

#[derive(PartialEq, Eq, Hash, Clone)]
struct Key {
    spec_string: String,
    specs: Vec<LoopSpecs>,
}

struct PlanCache {
    map: RwLock<HashMap<Key, Arc<LoopPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

fn cache() -> &'static PlanCache {
    static CACHE: OnceLock<PlanCache> = OnceLock::new();
    CACHE.get_or_init(|| PlanCache {
        map: RwLock::new(HashMap::new()),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    })
}

/// Parses + builds (or fetches) the plan for a spec string.
pub fn get_or_build(specs: &[LoopSpecs], spec_string: &str) -> Result<Arc<LoopPlan>, SpecError> {
    let c = cache();
    let key = Key { spec_string: spec_string.to_string(), specs: specs.to_vec() };
    if let Some(hit) = c.map.read().get(&key) {
        c.hits.fetch_add(1, Ordering::Relaxed);
        return Ok(Arc::clone(hit));
    }
    let parsed = parse(spec_string, specs.len())?;
    let plan = Arc::new(LoopPlan::build(&parsed, specs, spec_string)?);
    let mut map = c.map.write();
    let entry = map.entry(key).or_insert_with(|| Arc::clone(&plan));
    c.misses.fetch_add(1, Ordering::Relaxed);
    Ok(Arc::clone(entry))
}

/// Snapshot of the plan-cache statistics.
pub fn stats() -> PlanCacheStats {
    let c = cache();
    PlanCacheStats {
        hits: c.hits.load(Ordering::Relaxed),
        misses: c.misses.load(Ordering::Relaxed),
        entries: c.map.read().len(),
    }
}

/// Clears the cache (tests only).
pub fn clear() {
    cache().map.write().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm_specs() -> Vec<LoopSpecs> {
        vec![LoopSpecs::new(0, 8, 2), LoopSpecs::new(0, 8, 2), LoopSpecs::new(0, 8, 2)]
    }

    #[test]
    fn identical_requests_share_a_plan() {
        let s = gemm_specs();
        let p1 = get_or_build(&s, "abc").unwrap();
        let p2 = get_or_build(&s, "abc").unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
    }

    #[test]
    fn different_specs_or_strings_get_new_plans() {
        let s = gemm_specs();
        let p1 = get_or_build(&s, "abc").unwrap();
        let p2 = get_or_build(&s, "acb").unwrap();
        assert!(!Arc::ptr_eq(&p1, &p2));
        let mut s2 = gemm_specs();
        s2[0].end = 16;
        let p3 = get_or_build(&s2, "abc").unwrap();
        assert!(!Arc::ptr_eq(&p1, &p3));
    }

    #[test]
    fn stats_move() {
        let before = stats();
        let s = vec![LoopSpecs::new(0, 4, 1)];
        let _ = get_or_build(&s, "a").unwrap();
        let _ = get_or_build(&s, "a").unwrap();
        let after = stats();
        assert!(after.hits > before.hits || after.misses > before.misses);
    }

    #[test]
    fn errors_are_not_cached() {
        let s = gemm_specs();
        assert!(get_or_build(&s, "abz").is_err());
        assert!(get_or_build(&s, "abz").is_err());
    }
}
