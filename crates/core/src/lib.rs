//! # parlooper — PARallel LOOP gEneratoR
//!
//! Rust reproduction of the PARLOOPER framework from *"Harnessing Deep
//! Learning and HPC Kernels via High-Level Loop and Tensor Abstractions on
//! CPU Architectures"* (Georganas et al., IPDPS 2024).
//!
//! The user declares *logical* loops with [`LoopSpecs`] and expresses the
//! computation via the logical indices; the concrete loop nest — ordering,
//! multi-level blocking/tiling, and parallelization — is instantiated at
//! runtime from a single knob, the `loop_spec_string`:
//!
//! ```
//! use parlooper::{LoopSpecs, ThreadedLoop};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! // Listing 1: three logical GEMM loops (K, M, N), tiles of 2.
//! let gemm_loop = ThreadedLoop::new(
//!     &[
//!         LoopSpecs::new(0, 8, 2),                      // K-loop "a"
//!         LoopSpecs::blocked(0, 8, 2, vec![8, 4]),      // M-loop "b"
//!         LoopSpecs::blocked(0, 8, 2, vec![4]),         // N-loop "c"
//!     ],
//!     "bcaBCb", // order/blocking/parallelism, changeable with zero code edits
//! )
//! .unwrap();
//!
//! let tiles = AtomicUsize::new(0);
//! gemm_loop.run(|ind| {
//!     let (_ik, _im, _in) = (ind[0], ind[1], ind[2]);
//!     tiles.fetch_add(1, Ordering::Relaxed);
//! });
//! assert_eq!(tiles.load(Ordering::Relaxed), 4 * 4 * 4);
//! ```
//!
//! The paper's C++ POC JIT-compiles the requested nest; here the spec
//! compiles to a cached [`plan::LoopPlan`] executed by a generic walker at
//! TPP-tile granularity (see `DESIGN.md` for the substitution argument).

pub mod cache;
pub mod plan;
pub mod spec;

pub use cache::{stats as plan_cache_stats, PlanCacheStats};
pub use plan::LoopPlan;
pub use spec::{LoopSpecs, Schedule, SpecError};

use pl_runtime::{global_pool, ThreadPool};
use plan::WorkQueues;
use std::sync::Arc;

/// A declared logical loop nest, ready to be instantiated and run.
///
/// Mirrors the paper's `ThreadedLoop<N>` object (Listing 1, line 5): cheap
/// to construct (plans are cached), reusable, and runnable with different
/// bodies.
#[derive(Clone)]
pub struct ThreadedLoop {
    plan: Arc<LoopPlan>,
}

impl ThreadedLoop {
    /// Declares a nest of `specs.len()` logical loops (mnemonics `a`, `b`,
    /// ... in order) instantiated according to `loop_spec_string`.
    pub fn new(specs: &[LoopSpecs], loop_spec_string: &str) -> Result<Self, SpecError> {
        Ok(ThreadedLoop { plan: cache::get_or_build(specs, loop_spec_string)? })
    }

    /// The compiled plan.
    pub fn plan(&self) -> &Arc<LoopPlan> {
        &self.plan
    }

    /// Runs `body` over the nest on the global thread pool.
    ///
    /// `body` receives the logical indices in declaration order
    /// (`ind[0]` = loop `a`, ...).
    ///
    /// # Panics
    /// Panics if the spec's thread grid does not match the pool size.
    pub fn run(&self, body: impl Fn(&[usize]) + Send + Sync) {
        self.try_run_on(global_pool(), body).unwrap();
    }

    /// Runs on an explicit pool.
    ///
    /// # Panics
    /// Panics if the spec's thread grid does not match the pool size.
    pub fn run_on(&self, pool: &ThreadPool, body: impl Fn(&[usize]) + Send + Sync) {
        self.try_run_on(pool, body).unwrap();
    }

    /// Fallible variant of [`Self::run_on`].
    pub fn try_run_on(
        &self,
        pool: &ThreadPool,
        body: impl Fn(&[usize]) + Send + Sync,
    ) -> Result<(), SpecError> {
        self.try_run_full(pool, None, &body, None)
    }

    /// Full form with the paper's optional `init_func` / `term_func`
    /// (§II-C): both run once per team thread, before/after the nest.
    pub fn try_run_full(
        &self,
        pool: &ThreadPool,
        init: Option<&(dyn Fn() + Sync)>,
        body: &(dyn Fn(&[usize]) + Send + Sync),
        term: Option<&(dyn Fn() + Sync)>,
    ) -> Result<(), SpecError> {
        self.plan.check_team(pool.nthreads())?;
        let queues = WorkQueues::new(&self.plan);
        pool.parallel(|ctx| {
            if let Some(f) = init {
                f();
            }
            self.plan.execute_member(ctx, &queues, body);
            if let Some(f) = term {
                f();
            }
        });
        Ok(())
    }

    /// Simulates the schedule for a virtual team of `nthreads`: per-thread
    /// chronological lists of body-index tuples. This feeds the performance
    /// model (paper §II-E) without executing any computation.
    pub fn simulate(&self, nthreads: usize) -> Vec<Vec<Vec<usize>>> {
        (0..nthreads).map(|tid| self.plan.simulate_member(tid, nthreads)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use pl_runtime::ThreadPool;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn coverage(specs: &[LoopSpecs], spec: &str, pool: &ThreadPool) -> HashMap<Vec<usize>, usize> {
        let tl = ThreadedLoop::new(specs, spec).unwrap();
        let seen = Mutex::new(HashMap::new());
        tl.run_on(pool, |ind| {
            *seen.lock().entry(ind.to_vec()).or_insert(0) += 1;
        });
        seen.into_inner()
    }

    fn expected_tiles(specs: &[LoopSpecs]) -> usize {
        specs.iter().map(|s| s.trip_count()).product()
    }

    #[test]
    fn sequential_specs_cover_each_tile_once() {
        let pool = ThreadPool::new(3);
        let specs = vec![LoopSpecs::new(0, 8, 2), LoopSpecs::new(0, 6, 2), LoopSpecs::new(0, 4, 2)];
        for spec in ["abc", "cba", "bca", "acb"] {
            let cov = coverage(&specs, spec, &pool);
            assert_eq!(cov.len(), expected_tiles(&specs), "spec {spec}");
            assert!(cov.values().all(|&c| c == 3), "replicated on 3 threads: {spec}");
        }
    }

    #[test]
    fn blocked_specs_cover_each_tile_once() {
        let pool = ThreadPool::new(2);
        let specs = vec![
            LoopSpecs::blocked(0, 16, 2, vec![8, 4]),
            LoopSpecs::blocked(0, 12, 2, vec![6]),
            LoopSpecs::new(0, 8, 2),
        ];
        // a blocked (up to) twice, b blocked once.
        for spec in ["aabbc", "bacba", "abcab"] {
            let cov = coverage(&specs, spec, &pool);
            assert_eq!(cov.len(), expected_tiles(&specs), "spec {spec}");
        }
    }

    #[test]
    fn parallel_collapse_covers_space_exactly_once() {
        let pool = ThreadPool::new(4);
        let specs = vec![
            LoopSpecs::new(0, 8, 2),
            LoopSpecs::blocked(0, 16, 2, vec![8, 4]),
            LoopSpecs::blocked(0, 8, 2, vec![4]),
        ];
        for spec in ["aBCb", "BCab", "bcaBCb @ schedule(dynamic,1)", "ABCb"] {
            // "ABCb": the whole (a,b,c) prefix is one collapse group.
            let tl = ThreadedLoop::new(&specs, spec).unwrap();
            let seen = Mutex::new(HashMap::new());
            tl.run_on(&pool, |ind| {
                *seen.lock().entry(ind.to_vec()).or_insert(0) += 1;
            });
            let cov = seen.into_inner();
            assert_eq!(cov.len(), expected_tiles(&specs), "spec {spec}");
            assert!(cov.values().all(|&c| c == 1), "distributed exactly once: {spec}");
        }
    }

    #[test]
    fn partial_edge_blocks_are_covered() {
        // 10 is not divisible by the blocking 4: edge blocks of 2.
        let pool = ThreadPool::new(2);
        let specs = vec![LoopSpecs::blocked(0, 10, 2, vec![4]), LoopSpecs::new(0, 6, 3)];
        let cov = coverage(&specs, "ab", &pool);
        assert_eq!(cov.len(), 5 * 2);
        let cov2 = coverage(&specs, "aba", &pool);
        assert_eq!(cov2.len(), 5 * 2);
    }

    #[test]
    fn grid_mode_matches_listing3_shape() {
        let pool = ThreadPool::new(4);
        let specs = vec![
            LoopSpecs::new(0, 8, 2),
            LoopSpecs::blocked(0, 8, 2, vec![4, 2]),
            LoopSpecs::blocked(0, 8, 2, vec![4]),
        ];
        let tl = ThreadedLoop::new(&specs, "bC{R:2}aB{C:2}cb").unwrap();
        let seen = Mutex::new(HashMap::new());
        tl.run_on(&pool, |ind| {
            *seen.lock().entry(ind.to_vec()).or_insert(0) += 1;
        });
        let cov = seen.into_inner();
        assert_eq!(cov.len(), 4 * 4 * 4);
        assert!(cov.values().all(|&c| c == 1));
    }

    #[test]
    fn grid_size_mismatch_is_reported() {
        let pool = ThreadPool::new(3);
        let specs = vec![LoopSpecs::new(0, 8, 2), LoopSpecs::new(0, 8, 2)];
        let tl = ThreadedLoop::new(&specs, "A{R:4}b").unwrap();
        let err = tl.try_run_on(&pool, |_| {}).unwrap_err();
        assert_eq!(err, SpecError::GridSizeMismatch { grid: 4, team: 3 });
    }

    #[test]
    fn validation_errors_surface() {
        let specs = vec![LoopSpecs::new(0, 8, 2), LoopSpecs::new(0, 8, 2), LoopSpecs::new(0, 8, 2)];
        // b blocked but no blocking steps.
        assert!(matches!(
            ThreadedLoop::new(&specs, "abcb"),
            Err(SpecError::MissingBlockSteps { .. })
        ));
        // Non-consecutive uppercase.
        assert!(matches!(ThreadedLoop::new(&specs, "AbC"), Err(SpecError::NonConsecutiveParallel)));
        // Missing loop letter.
        assert!(matches!(ThreadedLoop::new(&specs, "ab"), Err(SpecError::UnknownLoop('c', 3))));
        // Imperfect nesting.
        let bad = vec![
            LoopSpecs::blocked(0, 12, 2, vec![5]),
            LoopSpecs::new(0, 4, 2),
            LoopSpecs::new(0, 4, 2),
        ];
        assert!(matches!(ThreadedLoop::new(&bad, "aabc"), Err(SpecError::ImperfectNesting { .. })));
    }

    #[test]
    fn barrier_sequences_execute() {
        let pool = ThreadPool::new(4);
        let specs = vec![LoopSpecs::new(0, 4, 1), LoopSpecs::new(0, 4, 1)];
        // Barrier after the outer sequential loop level.
        let tl = ThreadedLoop::new(&specs, "a|b").unwrap();
        let count = AtomicUsize::new(0);
        tl.run_on(&pool, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 16 * 4); // replicated x4
    }

    #[test]
    fn barrier_below_parallel_is_rejected() {
        let specs = vec![LoopSpecs::new(0, 8, 2), LoopSpecs::new(0, 8, 2)];
        assert!(matches!(ThreadedLoop::new(&specs, "Ab|"), Err(SpecError::BarrierBelowParallel)));
    }

    #[test]
    fn init_and_term_run_per_thread() {
        let pool = ThreadPool::new(3);
        let specs = vec![LoopSpecs::new(0, 3, 1)];
        let tl = ThreadedLoop::new(&specs, "A").unwrap();
        let inits = AtomicUsize::new(0);
        let terms = AtomicUsize::new(0);
        tl.try_run_full(
            &pool,
            Some(&|| {
                inits.fetch_add(1, Ordering::Relaxed);
            }),
            &|_| {},
            Some(&|| {
                terms.fetch_add(1, Ordering::Relaxed);
            }),
        )
        .unwrap();
        assert_eq!(inits.load(Ordering::Relaxed), 3);
        assert_eq!(terms.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn simulation_matches_execution_for_static_schedules() {
        let pool = ThreadPool::new(4);
        let specs = vec![
            LoopSpecs::new(0, 8, 2),
            LoopSpecs::blocked(0, 16, 4, vec![8]),
            LoopSpecs::new(0, 8, 4),
        ];
        for spec in ["aBCb", "baBC"] {
            let tl = ThreadedLoop::new(&specs, spec).unwrap();
            let sim = tl.simulate(4);
            // Gather the real distribution. Thread identity comes from a
            // thread-local slot filled by init.
            let per_thread: Vec<Mutex<Vec<Vec<usize>>>> =
                (0..4).map(|_| Mutex::new(Vec::new())).collect();
            // Use the grid of tid via a trick: record tid from ctx by using
            // pool.parallel directly with plan executor is private; instead
            // rely on deterministic static distribution: compare multisets.
            let all = Mutex::new(Vec::new());
            tl.run_on(&pool, |ind| {
                all.lock().push(ind.to_vec());
            });
            let mut got = all.into_inner();
            let mut want: Vec<Vec<usize>> = sim.into_iter().flatten().collect();
            got.sort();
            want.sort();
            assert_eq!(got, want, "spec {spec}");
            drop(per_thread);
        }
    }

    #[test]
    fn simulate_single_thread_preserves_nesting_order() {
        let specs = vec![LoopSpecs::new(0, 4, 2), LoopSpecs::new(0, 4, 2)];
        let tl = ThreadedLoop::new(&specs, "ab").unwrap();
        let sim = tl.simulate(1);
        assert_eq!(sim[0], vec![vec![0, 0], vec![0, 2], vec![2, 0], vec![2, 2]]);
        let tl2 = ThreadedLoop::new(&specs, "ba").unwrap();
        assert_eq!(tl2.simulate(1)[0], vec![vec![0, 0], vec![2, 0], vec![0, 2], vec![2, 2]]);
    }

    #[test]
    fn listing2_order_bca_bcb_string() {
        // Verify the nesting order of Listing 2: b0, c0, a0 sequential,
        // then (b1, c1) collapsed, then b2. With one thread the traversal
        // order is fully deterministic.
        let specs = vec![
            LoopSpecs::new(0, 2, 1),                 // a: K
            LoopSpecs::blocked(0, 4, 1, vec![2, 1]), // b: M (blocked twice)
            LoopSpecs::blocked(0, 2, 1, vec![1]),    // c: N (blocked once)
        ];
        let tl = ThreadedLoop::new(&specs, "bcaBCb").unwrap();
        let sim = tl.simulate(1);
        let first = &sim[0][0];
        assert_eq!(first, &vec![0, 0, 0]);
        // a (ind[0]) changes slowest among the last three levels, b fastest.
        assert_eq!(sim[0].len(), 2 * 4 * 2);
    }

    #[test]
    fn dynamic_encounters_beyond_one_work() {
        let pool = ThreadPool::new(2);
        // Sequential outer a -> multiple worksharing encounters.
        let specs = vec![LoopSpecs::new(0, 6, 1), LoopSpecs::new(0, 8, 1)];
        let tl = ThreadedLoop::new(&specs, "aB @ schedule(dynamic,2)").unwrap();
        let seen = Mutex::new(HashMap::new());
        tl.run_on(&pool, |ind| {
            *seen.lock().entry(ind.to_vec()).or_insert(0) += 1;
        });
        let cov = seen.into_inner();
        assert_eq!(cov.len(), 48);
        assert!(cov.values().all(|&c| c == 1));
    }
}
