//! End-to-end pl-retune demo: the tune-measure-install loop closed
//! against a live server, with the stale-DB failure mode it exists for.
//!
//! The scenario:
//!
//! 1. **Warm or load**: the server's tuning state comes from
//!    [`pl_retune::warm_or_load`] — a fingerprinted measured DB on disk
//!    when one exists, the modeled warm-up search otherwise.
//! 2. **Serve**: eight concurrent closed-loop sessions decode through
//!    the batcher (serial by default, `--fused` for the fused batch
//!    path), populating the per-shape statistics the harvest reads.
//! 3. **Poison**: a deliberately bad loop spec is installed for the
//!    hottest harvested shape — standing in for a stale or corrupted
//!    tuning DB. Serving keeps working (plans degrade to the default
//!    schedule; spec choice never changes values).
//! 4. **Retune mid-stream**: with a decode session in flight, one
//!    [`Retuner::run_cycle`] measures model-ranked candidates on real
//!    packed buffers and installs the measured winner through the
//!    registry epoch. The in-flight serial decode stream must be
//!    **bit-identical** across the install — zero downtime, zero
//!    divergence.
//! 5. **Persist**: the measured DB is saved, reloaded, verified entry
//!    for entry, and adopted by a second server via `warm_or_load`
//!    (the fast path a process restart takes). A garbage file then
//!    demonstrates the degrade path: logged warning, modeled warm-up,
//!    no panic.
//!
//! Run: `cargo run --release --example retune_llm [-- --fused]`

use pl_autotuner::{DbEntry, TuningDb};
use pl_dnn::{Decoder, DecoderConfig, DecoderModel};
use pl_perfmodel::Platform;
use pl_retune::{
    force_mode, host_fingerprint, load_measured_db, save_measured_db, warm_or_load, RetuneConfig,
    Retuner, WarmSource,
};
use pl_runtime::{default_threads, ThreadPool};
use pl_serve::{BatchModeTable, Server, ServerConfig};
use pl_tensor::{fill_uniform, Xorshift};
use std::sync::Arc;
use std::time::Duration;

const SESSIONS: usize = 8;
const STEPS: usize = 24;
const KV: usize = 64;
/// Decode steps in the across-the-install bit-identity stream; the
/// retune cycle fires halfway through.
const CHECK_STEPS: usize = 16;
const SEED: u64 = 2024;
/// The poison spec: not a valid loop string at all, so the registry's
/// degrade path (default schedule) serves it and the retuner finds it
/// unmeasurable — the install is then unconditional, which is exactly
/// what a stale entry deserves.
const POISON_SPEC: &str = "qqq";

fn token(seed: u64, hidden: usize) -> Vec<f32> {
    let mut x = vec![0.0f32; hidden];
    fill_uniform(&mut x, &mut Xorshift::new(seed), -0.5, 0.5);
    x
}

fn server_for(model: &Arc<DecoderModel>, pool: &Arc<ThreadPool>, fused: bool) -> Server {
    Server::new(
        Arc::clone(model),
        Arc::clone(pool),
        ServerConfig {
            tenants: 2,
            max_batch: SESSIONS,
            kv_capacity: KV,
            coalesce_wait: Duration::from_millis(1),
            fused,
            ..Default::default()
        },
    )
}

fn main() {
    let fused = std::env::args().any(|a| a == "--fused")
        || std::env::var("PL_RETUNE_FUSED").is_ok_and(|v| v == "1");
    let mode = if fused { "fused" } else { "serial" };
    let threads = default_threads().min(8);
    let platform = Platform::generic_host(threads);
    let model = Arc::new(DecoderModel::new(DecoderConfig::scaled_for_tests(), SEED));
    let hidden = model.config().hidden;
    let pool = Arc::new(ThreadPool::new(threads));
    // Measurements run on their own pool, never the serving threads.
    let tune_pool = ThreadPool::new(threads);
    let retuner = Retuner::new(platform.clone(), threads, RetuneConfig::default());
    let db_path = pl_bench::workspace_path(&format!("target/retune_llm_{mode}.db"));
    println!(
        "pl-retune demo [{mode} mode]: {SESSIONS} sessions x {STEPS} steps, {threads} threads, \
         persisted DB at {}",
        db_path.display()
    );

    // --- 1. Warm or load. ------------------------------------------------
    let _ = std::fs::remove_file(&db_path); // each run starts cold
    let mut server = server_for(&model, &pool, fused);
    match warm_or_load(&server, &platform, threads, &db_path) {
        WarmSource::Warmed(n, why) => {
            assert!(why.is_empty(), "cold start must be a clean miss, got: {why}");
            println!("cold start: modeled warm-up covered {n} shapes");
        }
        WarmSource::Loaded(n) => unreachable!("cold start loaded {n} entries"),
    }
    server.start();

    // --- 2. Serve: concurrent closed-loop decode traffic. ----------------
    std::thread::scope(|scope| {
        for s in 0..SESSIONS {
            let server = &server;
            scope.spawn(move || {
                let id = server.create_session(s % 2).expect("session admitted");
                let mut x = token(9000 + s as u64, hidden);
                for _ in 0..STEPS {
                    x = server.step(id, &x).unwrap();
                }
                server.close_session(id).unwrap();
            });
        }
    });
    let hot = server.hot_gemm_problems();
    assert!(!hot.is_empty(), "traffic must leave harvestable hot shapes");
    println!(
        "harvested {} hot GEMM shapes; hottest: {:?} (weight {})",
        hot.len(),
        hot[0].0,
        hot[0].1
    );

    // --- 3. Poison the hottest shape's tuning entry. ----------------------
    let p = hot[0].0;
    let poisoned_key = TuningDb::gemm_key(platform.name, p.m, p.n, p.k, &p.dtype.to_string());
    let mut db = server.tuning_db().clone();
    db.put(&poisoned_key, DbEntry { spec: POISON_SPEC.into(), score: 1.0e9 });
    server.adopt_tuning(platform.name, &db);
    println!("poisoned {poisoned_key} with spec {POISON_SPEC:?} (stale-DB stand-in)");

    // --- 4. Retune mid-stream, bit-identity across the install. ----------
    // The stream pins the serial path regardless of the demo mode: the
    // determinism contract (spec choice never changes values) is a
    // serial-execution guarantee.
    force_mode(&server, false);
    let id = server.create_session(0).expect("check session");
    let x0 = token(4242, hidden);
    let mut x = x0.clone();
    let mut served = Vec::with_capacity(CHECK_STEPS);
    let mut report = None;
    for t in 0..CHECK_STEPS {
        if t == CHECK_STEPS / 2 {
            let r = retuner.run_cycle(&server, &tune_pool);
            assert_eq!(
                r.epoch_after,
                r.epoch_before + 1,
                "a changing cycle must bump the registry epoch exactly once"
            );
            report = Some(r);
        }
        let y = server.step(id, &x).unwrap();
        served.push(y.clone());
        x = y;
    }
    server.close_session(id).unwrap();
    server.install_mode_policy(BatchModeTable::from_measurements(&[])); // drop the pin
    let report = report.expect("cycle ran");
    let outcome = report
        .outcomes
        .iter()
        .find(|o| o.key == poisoned_key)
        .expect("the poisoned shape must be retuned");
    assert!(outcome.changed, "the poisoned spec must be replaced");
    assert!(outcome.old_gflops.is_none(), "the poison must be unmeasurable");
    assert_ne!(outcome.new_spec, POISON_SPEC);
    assert!(outcome.new_gflops > 0.0, "the winner is a real measurement");
    println!(
        "retuned {} shapes in {:.2}s: {poisoned_key} now {} ({:.1} GF/s measured), epoch {} -> {}",
        report.outcomes.len(),
        report.cycle_seconds,
        outcome.new_spec,
        outcome.new_gflops,
        report.epoch_before,
        report.epoch_after
    );
    // Replay the whole stream — spanning the poison and the install —
    // against a sequential unbatched decoder. Bitwise.
    let mut d = Decoder::from_model(Arc::clone(&model), KV);
    let mut x = x0;
    for (t, served_y) in served.iter().enumerate() {
        let y = d.step(&x, &pool);
        assert_eq!(&y, served_y, "step {t}: in-flight decode must be bit-identical across install");
        x = y;
    }
    println!("in-flight decode stream bit-identical across poison + retune install ({CHECK_STEPS} steps)");

    // --- 5. Persist, reload, adopt; then the degrade path. ----------------
    let fingerprint = host_fingerprint(platform.name, threads);
    let snapshot = server.tuning_db().clone();
    save_measured_db(&db_path, &fingerprint, &snapshot).expect("save measured DB");
    let reloaded = load_measured_db(&db_path, &fingerprint).expect("reload measured DB");
    assert_eq!(reloaded.len(), snapshot.len(), "round-trip must preserve every entry");
    let entry = reloaded.get(&poisoned_key).expect("retuned key persisted");
    assert_eq!(entry.spec, outcome.new_spec, "persisted spec is the measured winner");
    println!(
        "persisted {} entries to {} and verified the round-trip",
        reloaded.len(),
        db_path.display()
    );

    let restarted = server_for(&model, &pool, fused);
    match warm_or_load(&restarted, &platform, threads, &db_path) {
        WarmSource::Loaded(n) => println!("restart path: adopted {n} measured entries from disk"),
        WarmSource::Warmed(n, why) => unreachable!("restart fell back to warm-up ({n}): {why}"),
    }

    let corrupt_path = pl_bench::workspace_path(&format!("target/retune_llm_{mode}_corrupt.db"));
    std::fs::write(&corrupt_path, b"\x00\x01 this is not a tuning db").expect("write corrupt file");
    let degraded = server_for(&model, &pool, fused);
    match warm_or_load(&degraded, &platform, threads, &corrupt_path) {
        WarmSource::Warmed(n, why) => {
            assert!(!why.is_empty(), "a corrupt file must carry a reason");
            println!(
                "degrade path: corrupt DB ignored ({why}); modeled warm-up covered {n} shapes"
            );
        }
        WarmSource::Loaded(n) => unreachable!("corrupt file loaded {n} entries"),
    }

    server.shutdown();
    println!(
        "\nOK: [{mode}] measured winner installed for {poisoned_key} with zero downtime, \
         persisted DB round-tripped, corrupt DB degraded to warm-up"
    );
}
