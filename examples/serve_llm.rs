//! End-to-end pl-serve demo: a multi-tenant batched inference server over
//! one shared scaled decoder, with a mixed prefill + decode scenario.
//!
//! Eight concurrent client sessions (two tenants) each run a prefill and
//! then a closed decode loop (the last token's transformed state feeds
//! back as the next input — a deterministic stand-in for sampling). A
//! ninth client arrives mid-run with a **long prompt** (8 x the server's
//! `prefill_chunk`): continuous batching splits it into ladder-aligned
//! chunks that interleave with the live decode batches instead of
//! blocking them. The batcher coalesces pending steps into single
//! parallel regions; afterwards every session's entire output stream is
//! checked against a sequential, unbatched `Decoder` baseline over the
//! same weights — and the chunked prefill against both a chunk-by-chunk
//! forward (bitwise) and the whole-prompt forward (tolerance) — and the
//! `ServerStats` surface is printed.
//!
//! Two batch-execution modes:
//!
//! * default (serial): each batched step runs whole inside the region —
//!   the check against the baseline is **bit-identical**.
//! * `--fused` (or `PL_SERVE_FUSED=1`): per layer, the B sessions'
//!   projections run as one `hidden x B` GEMM
//!   (`DecoderModel::step_batch_fused`) — the check is tolerance-based
//!   (<= 1e-5 relative error at f32) and the fused GEMM shapes are
//!   printed.
//!
//! Two precisions (`--precision f32|int8`, or `PL_SERVE_PRECISION`):
//! with `int8` the model holds VNNI-packed int8 weights and serves
//! through the quantized i32-accumulation path. The baseline replay uses
//! the *same* quantized model, so the serial check stays bit-identical
//! and the fused check tightens around the quantized serial path
//! (<= 1e-4: per-column activation quantization is batch-invariant). A
//! further cross-precision replay checks the served int8 streams against
//! a same-seed **f32** model within the quantization-error envelope
//! (<= 0.25 floored relative error, the bound derived in
//! `pl_dnn::llm`'s int8 test), open-loop on the served stream so the
//! bound is per-forward rather than compounding.
//!
//! With `--trace` (or `PL_SERVE_TRACE=1`) the `pl-trace` flight recorder
//! runs for the serving phase: the captured events are validated in
//! process (balanced begin/end on every lane, nonzero GEMM spans) and
//! dumped to `trace_serve_llm.json` in Chrome `trace_event` format —
//! open it in `chrome://tracing` or `ui.perfetto.dev`.
//!
//! With `--metrics` (or `PL_SERVE_METRICS=1`) the server's pl-metrics
//! plane is exercised: the labeled snapshot is rendered to Prometheus
//! text exposition, validated in process by the in-repo conformance
//! parser (`pl_metrics::parse_prometheus`), cross-checked against the
//! `ServerStats` counters, and dumped to `metrics_serve_llm.prom`.
//!
//! Run: `cargo run --release --example serve_llm [-- --fused] [-- --trace]
//! [-- --metrics] [-- --precision int8]`

use pl_dnn::{Decoder, DecoderConfig, DecoderModel, Precision};
use pl_perfmodel::Platform;
use pl_runtime::{default_threads, ThreadPool};
use pl_serve::{Server, ServerConfig};
use pl_tensor::{fill_uniform, max_rel_err, Xorshift};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SESSIONS: usize = 8;
const TENANTS: usize = 2;
const PROMPT: usize = 4;
const STEPS: usize = 24;
const KV: usize = 64;
const FUSED_TOL: f32 = 1e-5;
/// Fused-vs-serial tolerance on the quantized path: per-column activation
/// quantization is batch-invariant and i32 accumulation is exact, so the
/// fused int8 step tracks the serial int8 step to float rounding in the
/// f32 epilogue only — looser than f32's 1e-5 but still tight.
const FUSED_TOL_I8: f32 = 1e-4;
/// Cross-precision envelope: served int8 outputs vs a same-seed f32
/// model, per forward (open-loop on the served stream). The bound and
/// its derivation live with `pl_dnn::llm`'s int8 equivalence test.
const INT8_VS_F32_TOL: f32 = 0.25;
/// Chunk cap for the continuous-batching path: the short session prompts
/// (4 tokens) stay single-chunk (bit-identical), the long prompt splits.
const PREFILL_CHUNK: usize = 4;
/// The mid-run long prompt: 8 chunks of `PREFILL_CHUNK`.
const LONG_PROMPT: usize = 32;

fn prompt_for(session: usize, hidden: usize) -> Vec<f32> {
    let mut x = vec![0.0f32; hidden * PROMPT];
    fill_uniform(&mut x, &mut Xorshift::new(7000 + session as u64), -0.5, 0.5);
    x
}

fn last_token(y: &[f32], hidden: usize) -> Vec<f32> {
    y[y.len() - hidden..].to_vec()
}

/// Relative error with the denominator floored at 1.0 — the metric the
/// int8 equivalence tests use: activations here are O(1), and a flat
/// floor keeps near-zero elements from turning quantization noise into
/// unbounded ratios.
fn rel_err_floored(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1.0)).fold(0.0, f32::max)
}

const SEED: u64 = 2024;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fused = args.iter().any(|a| a == "--fused")
        || std::env::var("PL_SERVE_FUSED").is_ok_and(|v| v == "1");
    let trace = args.iter().any(|a| a == "--trace")
        || std::env::var("PL_SERVE_TRACE").is_ok_and(|v| v == "1");
    let metrics = args.iter().any(|a| a == "--metrics")
        || std::env::var("PL_SERVE_METRICS").is_ok_and(|v| v == "1");
    let mut precision = Precision::F32;
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--precision=") {
            precision = v.parse().expect("--precision takes f32|int8");
        } else if a == "--precision" {
            let v = args.get(i + 1).expect("--precision takes f32|int8");
            precision = v.parse().expect("--precision takes f32|int8");
        }
    }
    if let Ok(v) = std::env::var("PL_SERVE_PRECISION") {
        precision = v.parse().expect("PL_SERVE_PRECISION takes f32|int8");
    }
    let fused_tol = match precision {
        Precision::F32 => FUSED_TOL,
        Precision::Int8 => FUSED_TOL_I8,
    };
    let cfg = DecoderConfig::scaled_for_tests();
    let hidden = cfg.hidden;
    let model = Arc::new(DecoderModel::new_with_precision(cfg, SEED, precision));
    let pool = Arc::new(ThreadPool::new(default_threads().min(8)));
    println!(
        "pl-serve demo [{} mode, {precision}]: {SESSIONS} sessions / {TENANTS} tenants, \
         {} threads, {PROMPT}-token prompts + {STEPS} decode steps each",
        if fused { "fused" } else { "serial" },
        pool.nthreads()
    );

    let mut server = Server::new(
        Arc::clone(&model),
        Arc::clone(&pool),
        ServerConfig {
            tenants: TENANTS,
            max_batch: SESSIONS,
            kv_capacity: KV,
            prefill_chunk: PREFILL_CHUNK,
            coalesce_wait: Duration::from_millis(2),
            fused,
            precision,
            ..Default::default()
        },
    );
    let warmed = server.warm_tuning(&Platform::zen4(), pool.nthreads());
    println!("tuning DB warmed + installed for {warmed} decode/prefill GEMM+SpMM shapes");
    server.start();

    // Every weight was packed into its blocked kernel layout at model
    // construction; from here on, serving (and the baseline replay below)
    // must pack activations only.
    let packs_before_traffic = pl_dnn::prepared::pack_events();

    // --- Serve: concurrent clients through the batcher, plus one late
    // long-prompt client whose prefill chunks interleave with the live
    // decode traffic. --------------------------------------------------
    let long_prompt = {
        let mut p = vec![0.0f32; hidden * LONG_PROMPT];
        fill_uniform(&mut p, &mut Xorshift::new(31337), -0.5, 0.5);
        p
    };
    // Trace only the serving phase: everything recorded from here on is
    // live batched traffic, not warmup or baseline replay.
    let trace_since = pl_trace::now_ns();
    if trace {
        pl_trace::enable();
    }
    let t0 = Instant::now();
    // Per session: the served prefill's last token (the first decode
    // input — the cross-precision replay below needs it) and the served
    // decode stream.
    let mut served: Vec<(Vec<f32>, Vec<Vec<f32>>)> = Vec::new();
    let mut long_served: Vec<f32> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for s in 0..SESSIONS {
            let server = &server;
            handles.push(scope.spawn(move || {
                let id = server.create_session(s % TENANTS).expect("session admitted");
                let y = server.prefill(id, &prompt_for(s, hidden), PROMPT).unwrap();
                let x0 = last_token(&y, hidden);
                let mut x = x0.clone();
                let mut outs = Vec::with_capacity(STEPS);
                for _ in 0..STEPS {
                    let y = server.step(id, &x).unwrap();
                    x = y.clone();
                    outs.push(y);
                }
                server.close_session(id).unwrap();
                (x0, outs)
            }));
        }
        let long_handle = {
            let server = &server;
            let long_prompt = &long_prompt;
            scope.spawn(move || {
                // Arrive mid-run, while decode traffic is live.
                while server.stats().completed.load(std::sync::atomic::Ordering::Relaxed)
                    < (SESSIONS * STEPS / 4) as u64
                {
                    std::thread::yield_now();
                }
                let id = server.create_session(1).expect("late session admitted");
                let y = server.prefill(id, long_prompt, LONG_PROMPT).unwrap();
                server.close_session(id).unwrap();
                y
            })
        };
        for h in handles {
            served.push(h.join().unwrap());
        }
        long_served = long_handle.join().unwrap();
    });
    let serve_s = t0.elapsed().as_secs_f64();
    let snap = server.stats().snapshot();
    // Snapshot the metrics plane while the server is live — the gauges
    // (`pl_sessions_live`, `pl_pending`, `pl_shard_health`) are sampled
    // at snapshot time, and the health view needs a running watchdog.
    let metrics_snap = metrics.then(|| (server.metrics_snapshot(), server.health()));
    server.shutdown();
    // Sampled here, before the baselines: the cross-precision replay
    // constructs a fresh f32 model, and model construction is *supposed*
    // to pack (once). Only the serving phase must be pack-free.
    let packs_after_traffic = pl_dnn::prepared::pack_events();
    let trace_events = trace.then(|| {
        pl_trace::disable();
        pl_trace::snapshot_since(trace_since)
    });

    // --- Baseline: the same streams, sequential and unbatched. ----------
    let t1 = Instant::now();
    let mut mismatches = 0usize;
    let mut worst_rel = 0.0f32;
    for (s, (_, served_steps)) in served.iter().enumerate() {
        let mut d = Decoder::from_model(Arc::clone(&model), KV);
        let y = d.prefill(&prompt_for(s, hidden), PROMPT, &pool);
        let mut x = last_token(&y, hidden);
        for (t, served_y) in served_steps.iter().enumerate() {
            let y = d.step(&x, &pool);
            if fused {
                let err = max_rel_err(&y, served_y);
                worst_rel = worst_rel.max(err);
                if err > fused_tol {
                    eprintln!("TOLERANCE EXCEEDED: session {s} step {t}: rel err {err}");
                    mismatches += 1;
                }
                // Continue from the served stream so one within-tolerance
                // divergence cannot compound across the remaining steps.
                x = served_y.clone();
            } else {
                if &y != served_y {
                    eprintln!("MISMATCH: session {s} step {t}");
                    mismatches += 1;
                }
                x = y;
            }
        }
    }
    // --- Cross-precision: the served int8 streams vs a same-seed f32
    // model. Same seed means the int8 model's weights are the exact
    // quantization of this model's, so every divergence is quantization
    // error. Replayed open-loop (each step's input pinned to the served
    // stream) the error is per-forward and the envelope bound applies.
    let mut worst_xprec = 0.0f32;
    if precision == Precision::Int8 {
        let f32_model = Arc::new(DecoderModel::new(DecoderConfig::scaled_for_tests(), SEED));
        for (s, (x0, served_steps)) in served.iter().enumerate() {
            let mut d = Decoder::from_model(Arc::clone(&f32_model), KV);
            let y = d.prefill(&prompt_for(s, hidden), PROMPT, &pool);
            let err = rel_err_floored(&last_token(&y, hidden), x0);
            worst_xprec = worst_xprec.max(err);
            if err > INT8_VS_F32_TOL {
                eprintln!("INT8 ENVELOPE EXCEEDED: session {s} prefill: rel err {err}");
                mismatches += 1;
            }
            let mut x = x0.clone();
            for (t, served_y) in served_steps.iter().enumerate() {
                let y = d.step(&x, &pool);
                let err = rel_err_floored(&y, served_y);
                worst_xprec = worst_xprec.max(err);
                if err > INT8_VS_F32_TOL {
                    eprintln!("INT8 ENVELOPE EXCEEDED: session {s} step {t}: rel err {err}");
                    mismatches += 1;
                }
                x = served_y.clone();
            }
        }
    }
    // The interleaved long prefill: bitwise equal to a chunk-by-chunk
    // forward (same widths, same kernels — in both modes the chunk runs
    // the serial forward path), within tolerance of the whole-prompt
    // forward (chunking changes the projection GEMM widths).
    let mut st = model.new_state(KV);
    let chunked_base =
        model.forward_chunked(&mut st, &long_prompt, LONG_PROMPT, PREFILL_CHUNK, &pool);
    if long_served != chunked_base {
        eprintln!("MISMATCH: interleaved long prefill vs chunked forward");
        mismatches += 1;
    }
    let mut st = model.new_state(KV);
    let whole_base = model.forward(&mut st, &long_prompt, LONG_PROMPT, &pool);
    let long_err = max_rel_err(&long_served, &whole_base);
    if long_err > fused_tol {
        eprintln!("TOLERANCE EXCEEDED: chunked vs whole-prompt prefill rel err {long_err}");
        mismatches += 1;
    }
    let base_s = t1.elapsed().as_secs_f64();

    // --- Report. ---------------------------------------------------------
    println!("\n=== ServerStats ===");
    println!("steps completed      {:>10}", snap.completed);
    println!("prefills             {:>10}", snap.prefills);
    println!("prefill chunks       {:>10}", snap.prefill_chunks);
    println!("mixed batches        {:>10}", snap.mixed_batches);
    println!("batches              {:>10}", snap.batches);
    println!("fused batches        {:>10}", snap.fused_batches);
    println!("mean batch size      {:>10.2}", snap.mean_batch);
    println!("max batch observed   {:>10}", snap.max_batch_observed);
    println!("batch distribution   {:?}", snap.batch_distribution);
    println!("throughput           {:>10.1} steps/s", snap.tokens_per_s);
    println!("step latency p50     {:>10} us", snap.p50_us);
    println!("step latency p99     {:>10} us", snap.p99_us);
    println!("queue wait p50/p99   {:>6}/{} us", snap.queue_wait_p50_us, snap.queue_wait_p99_us);
    println!("execute p50/p99      {:>6}/{} us", snap.execute_p50_us, snap.execute_p99_us);
    println!(
        "rejected (backpressure/sessions) {}/{}",
        snap.rejected_backpressure, snap.rejected_sessions
    );
    if fused {
        println!("fused GEMM shapes (m x B x k -> GEMMs executed):");
        for ((m, n, k), count) in &snap.fused_gemm_shapes {
            println!("  {m:>4} x {n:<2} x {k:>4}   {count:>6}");
        }
    }
    println!("\nserve wall time      {serve_s:>10.3} s");
    println!("baseline wall time   {base_s:>10.3} s (sequential unbatched)");

    // --- Flight recorder: validate and dump the serving-phase trace. -----
    if let Some(events) = trace_events {
        println!("\n=== flight recorder ===");
        assert!(!events.is_empty(), "tracing was on but captured nothing");
        assert_eq!(pl_trace::total_dropped(), 0, "ring too small for this workload");
        // Span guards are RAII and strictly nested per thread, so after
        // shutdown every lane's Begin/End counts must balance exactly.
        let mut balance: std::collections::BTreeMap<u32, i64> = std::collections::BTreeMap::new();
        for e in &events {
            match e.kind {
                pl_trace::EventKind::Begin => *balance.entry(e.lane).or_default() += 1,
                pl_trace::EventKind::End => *balance.entry(e.lane).or_default() -= 1,
                _ => {}
            }
        }
        for (lane, b) in &balance {
            assert_eq!(*b, 0, "lane {lane}: unbalanced begin/end spans");
        }
        let summary = pl_trace::TraceSummary::from_events(&events);
        assert_eq!(summary.unmatched, 0, "orphan End events in the trace");
        // Plans tag their execute span with the weight dtype, so the
        // span name to expect follows the serving precision.
        let gemm_span = match precision {
            Precision::F32 => "gemm.execute",
            Precision::Int8 => "gemm.i8.execute",
        };
        assert!(summary.count_for(gemm_span) > 0, "no {gemm_span} spans recorded");
        assert!(summary.total_ns_for(gemm_span) > 0, "GEMM spans all zero-length");
        assert!(summary.count_for("batch.execute") > 0, "no batch execute spans recorded");
        assert_eq!(
            summary.count_for("step.queue_wait"),
            (SESSIONS * STEPS) as u64,
            "every decode step must record its queue wait"
        );
        println!("events captured      {:>10}", events.len());
        println!("recorder lanes       {:>10}", balance.len());
        println!(
            "gemm spans           {:>10} ({:.2} ms total)",
            summary.count_for(gemm_span),
            summary.total_ns_for(gemm_span) as f64 / 1e6
        );
        println!(
            "decode phases (ms)   ln {:.2} / qkv {:.2} / attn {:.2} / ffn {:.2}",
            summary.total_ns_for("decode.ln") as f64 / 1e6,
            summary.total_ns_for("decode.qkv") as f64 / 1e6,
            summary.total_ns_for("decode.attn") as f64 / 1e6,
            summary.total_ns_for("decode.ffn") as f64 / 1e6
        );
        let json = pl_trace::chrome_trace_json(&events);
        assert!(json.contains("\"traceEvents\""), "chrome export malformed");
        let path = pl_bench::workspace_path("trace_serve_llm.json");
        match std::fs::write(&path, &json) {
            Ok(()) => {
                println!("wrote {} — open in chrome://tracing or ui.perfetto.dev", path.display())
            }
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
        println!("OK: trace balanced on every lane, GEMM spans nonzero");
    }

    // --- Metrics plane: conformance-check and dump the exposition. -------
    if let Some((msnap, health)) = metrics_snap {
        println!("\n=== pl-metrics exposition ===");
        let text = pl_metrics::render_prometheus(&msnap);
        let report = pl_metrics::parse_prometheus(&text)
            .expect("rendered exposition must pass the conformance parser");
        for (family, kind) in [
            ("pl_steps_total", "counter"),
            ("pl_prefill_chunks_total", "counter"),
            ("pl_batches_total", "counter"),
            ("pl_queue_wait_us", "histogram"),
            ("pl_execute_us", "histogram"),
            ("pl_slo_burn_rate", "gauge"),
            ("pl_sessions_live", "gauge"),
            ("pl_shard_health", "gauge"),
        ] {
            assert_eq!(
                report.families.get(family).map(String::as_str),
                Some(kind),
                "family {family} missing or mistyped in the exposition"
            );
        }
        // The metrics plane and the ServerStats plane count the same
        // traffic through independent code paths — they must agree.
        let steps_by_tenant: u64 = (0..TENANTS as u32)
            .map(|t| msnap.counter_value("pl_steps_total", &[("tenant", &t.to_string())]))
            .sum();
        assert_eq!(steps_by_tenant, snap.completed, "metrics steps disagree with ServerStats");
        let chunks_by_tenant: u64 = (0..TENANTS as u32)
            .map(|t| msnap.counter_value("pl_prefill_chunks_total", &[("tenant", &t.to_string())]))
            .sum();
        assert_eq!(chunks_by_tenant, snap.prefill_chunks, "metrics chunks disagree");
        assert!(text.contains("pl_queue_wait_us_bucket{"), "histogram buckets missing");
        assert!(text.contains("le=\"+Inf\""), "+Inf bucket missing");
        println!("families declared    {:>10}", report.families.len());
        println!("sample lines         {:>10}", report.samples);
        println!("histogram series     {:>10}", report.histogram_series);
        println!("shard health         {:>10}", health);
        let path = pl_bench::workspace_path("metrics_serve_llm.prom");
        match std::fs::write(&path, &text) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
        println!("OK: exposition conformant, counters agree with ServerStats");
    }

    assert_eq!(
        packs_after_traffic, packs_before_traffic,
        "steady-state serving packed weight bytes (prepared-op discipline violated)"
    );
    assert_eq!(
        mismatches,
        0,
        "batched outputs must match the baseline ({})",
        if fused { "within tolerance" } else { "bit-identical" }
    );
    if precision == Precision::Int8 {
        println!(
            "int8 vs same-seed f32 model: worst per-forward rel err {worst_xprec:.3} \
             (envelope {INT8_VS_F32_TOL})"
        );
    }
    assert!(
        snap.max_batch_observed > 1,
        "batcher never coalesced: max batch {}",
        snap.max_batch_observed
    );
    assert_eq!(snap.completed, (SESSIONS * STEPS) as u64);
    assert_eq!(snap.prefills, (SESSIONS + 1) as u64, "short prefills + the long one completed");
    assert_eq!(
        snap.prefill_chunks,
        (SESSIONS + LONG_PROMPT / PREFILL_CHUNK) as u64,
        "short prompts stay single-chunk; the long one splits into {} chunks",
        LONG_PROMPT / PREFILL_CHUNK
    );
    if fused {
        // A batch can be a lone prefill chunk; every decode-bearing batch
        // must have run fused.
        assert_eq!(snap.fused_batches, snap.decode_batches, "every decode batch must run fused");
        assert!(!snap.fused_gemm_shapes.is_empty());
        println!(
            "\nOK: {SESSIONS} concurrent sessions + 1 interleaved long prefill \
             ({} chunks, {} mixed batches), max batch {}, fused outputs within \
             {fused_tol} of the sequential baseline (worst rel err {worst_rel:.2e})",
            LONG_PROMPT / PREFILL_CHUNK,
            snap.mixed_batches,
            snap.max_batch_observed
        );
    } else {
        assert_eq!(snap.fused_batches, 0);
        println!(
            "\nOK: {SESSIONS} concurrent sessions + 1 interleaved long prefill \
             ({} chunks, {} mixed batches), max batch {}, all outputs \
             bit-identical to the sequential baseline",
            LONG_PROMPT / PREFILL_CHUNK,
            snap.mixed_batches,
            snap.max_batch_observed
        );
    }
}
