//! Quickstart: the paper's Listing 1 — a GEMM whose loop order, blocking
//! and parallelization are all decided by one runtime string.
//!
//! ```sh
//! cargo run --release --example quickstart            # default spec
//! cargo run --release --example quickstart -- bcaBCb  # any legal spec
//! ```

use pl_kernels::{Gemm, GemmShape, GemmTuning};
use pl_runtime::global_pool;
use pl_tensor::{fill_uniform, BlockedMatrix, Xorshift};

fn main() {
    let spec = std::env::args().nth(1).unwrap_or_else(|| "BCa".to_string());
    let (m, n, k) = (512usize, 512usize, 512usize);
    let shape = GemmShape::with_default_blocks(m, n, k);
    println!(
        "GEMM {m}x{n}x{k}, blocks {}x{}x{}, loop_spec_string = {spec:?}",
        shape.bm, shape.bn, shape.bk
    );

    // Tensors in the paper's blocked layouts (Listing 1 lines 1-3).
    let mut rng = Xorshift::new(42);
    let mut a_cm = vec![0.0f32; m * k];
    let mut b_cm = vec![0.0f32; k * n];
    fill_uniform(&mut a_cm, &mut rng, -0.5, 0.5);
    fill_uniform(&mut b_cm, &mut rng, -0.5, 0.5);
    let mut a = BlockedMatrix::<f32>::a_layout(m, k, shape.bm, shape.bk).unwrap();
    a.pack_from_colmajor(&a_cm);
    let mut b = BlockedMatrix::<f32>::b_layout(k, n, shape.bk, shape.bn).unwrap();
    b.pack_from_colmajor(&b_cm);
    let mut c = BlockedMatrix::<f32>::c_layout(m, n, shape.bm, shape.bn).unwrap();

    // The kernel: logical loops + TPP body. Changing the spec string
    // re-instantiates the nest with zero code changes.
    let tuning = GemmTuning { k_step: shape.kb(), ..GemmTuning::simple(&spec) };
    let gemm = match Gemm::<f32, f32, f32>::new(shape, tuning) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("invalid spec {spec:?}: {e}");
            std::process::exit(1);
        }
    };

    let pool = global_pool();
    // Warm-up (plan + kernel caches), then measure.
    gemm.execute(&a, &b, &mut c, pool).unwrap();
    let t0 = std::time::Instant::now();
    let reps = 5;
    for _ in 0..reps {
        gemm.execute(&a, &b, &mut c, pool).unwrap();
    }
    let dt = t0.elapsed().as_secs_f64() / reps as f64;
    println!(
        "{} threads, {:.2} ms/iter, {:.1} GFLOPS",
        pool.nthreads(),
        dt * 1e3,
        shape.flops() as f64 / dt / 1e9
    );

    // Correctness spot-check against a scalar reference.
    let got = c.unpack_to_colmajor();
    let want = pl_kernels::gemm::reference_gemm(&a_cm, &b_cm, m, n, k);
    let max_err = got.iter().zip(&want).map(|(g, w)| (g - w).abs()).fold(0.0f32, f32::max);
    println!("max |err| vs reference = {max_err:.2e}");
    assert!(max_err < 1e-2);

    let stats = parlooper::plan_cache_stats();
    println!(
        "plan cache: {} hits / {} misses ({} live plans)",
        stats.hits, stats.misses, stats.entries
    );
}
