//! End-to-end session-migration demo: live sessions move between shards
//! mid-stream with **bit-identical** continuations.
//!
//! Four client sessions prefill and decode through a 2-shard
//! [`pl_router::Router`]. Halfway through each stream the control plane
//! reshapes the fleet under them:
//!
//! 1. an explicit [`Router::migrate_session`] moves one session to the
//!    other shard (quiesce → export the dense KV snapshot → import →
//!    re-bind placement), with the per-move latency printed;
//! 2. shard 0 is then drained ([`Router::drain_shard`]) and
//!    [`Router::recover_shard`] re-homes its surviving sessions from the
//!    drain report — the dead-shard recovery path.
//!
//! Every stream then finishes its remaining steps. A second, identical
//! router runs the *same* traffic in the same order with **no**
//! migrations, and both runs are driven sequentially (every batch is one
//! step wide, so batch composition matches exactly) — which makes the
//! migrated streams comparable **bitwise in serial AND fused modes**:
//! migration must be numerically invisible.
//!
//! The router's aggregated pl-metrics snapshot is rendered in Prometheus
//! text format at the end; CI greps it for the paged-KV families
//! (`pl_kv_pages_free`, `pl_kv_pages_shared`, `pl_kv_sessions_spilled`)
//! and the `pl_migrations_total` counter.
//!
//! Run: `cargo run --release --example migrate_llm [-- --fused]`

use pl_bench::{BenchArtifact, BenchRow, ROUTING_OVERHEAD, SERVE_ARTIFACT};
use pl_dnn::{DecoderConfig, DecoderModel};
use pl_perfmodel::Platform;
use pl_router::{Router, RouterConfig};
use pl_runtime::default_threads;
use pl_serve::ServerConfig;
use pl_tensor::{fill_uniform, Xorshift};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SESSIONS: usize = 4;
const TENANTS: usize = 2;
const PROMPT: usize = 8;
const STEPS_BEFORE: usize = 12;
const STEPS_AFTER: usize = 12;
const KV: usize = 64;
const SHARDS: usize = 2;

fn prompt_for(session: usize, hidden: usize) -> Vec<f32> {
    let mut x = vec![0.0f32; hidden * PROMPT];
    fill_uniform(&mut x, &mut Xorshift::new(4200 + session as u64), -0.5, 0.5);
    x
}

fn last_token(y: &[f32], hidden: usize) -> Vec<f32> {
    y[y.len() - hidden..].to_vec()
}

fn make_router(model: &Arc<DecoderModel>, fused: bool, total_threads: usize) -> Router {
    Router::new(
        Arc::clone(model),
        RouterConfig {
            shards: SHARDS,
            total_threads,
            routing_overhead: ROUTING_OVERHEAD,
            server: ServerConfig {
                tenants: TENANTS,
                max_batch: SESSIONS,
                kv_capacity: KV,
                coalesce_wait: Duration::ZERO,
                fused,
                ..Default::default()
            },
        },
    )
    .expect("router config")
}

/// (session ids, per-session last outputs, per-session streams).
type FirstHalf = (Vec<u64>, Vec<Vec<f32>>, Vec<Vec<Vec<f32>>>);

/// Admits the standard sessions and runs each stream up to the midpoint.
fn run_first_half(r: &Router, hidden: usize) -> FirstHalf {
    let mut ids = Vec::new();
    let mut xs = Vec::new();
    let mut streams = vec![Vec::new(); SESSIONS];
    for s in 0..SESSIONS {
        let id = r.create_session(s % TENANTS).expect("admitted");
        let y = r.prefill(id, &prompt_for(s, hidden), PROMPT).unwrap();
        ids.push(id);
        xs.push(last_token(&y, hidden));
    }
    // Round-robin, one step per session per round: deterministic order,
    // every batch one step wide — identical composition across runs.
    for _ in 0..STEPS_BEFORE {
        for s in 0..SESSIONS {
            let y = r.step(ids[s], &xs[s]).unwrap();
            xs[s] = y.clone();
            streams[s].push(y);
        }
    }
    (ids, xs, streams)
}

fn run_second_half(r: &Router, ids: &[u64], xs: &mut [Vec<f32>], streams: &mut [Vec<Vec<f32>>]) {
    for _ in 0..STEPS_AFTER {
        for s in 0..SESSIONS {
            let y = r.step(ids[s], &xs[s]).unwrap();
            xs[s] = y.clone();
            streams[s].push(y);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fused = args.iter().any(|a| a == "--fused")
        || std::env::var("PL_SERVE_FUSED").is_ok_and(|v| v == "1");
    let cfg = DecoderConfig::scaled_for_tests();
    let hidden = cfg.hidden;
    let model = Arc::new(DecoderModel::new(cfg, 4242));
    let total_threads = default_threads().clamp(SHARDS, 8);
    let mode = if fused { "fused" } else { "serial" };
    println!(
        "pl-router migration demo [{mode} mode]: {SESSIONS} sessions / {TENANTS} tenants on \
         {SHARDS} shards, {PROMPT}-token prompts, {STEPS_BEFORE}+{STEPS_AFTER} decode steps \
         with mid-stream migration"
    );

    // --- Migrated run. ---------------------------------------------------
    let mut router = make_router(&model, fused, total_threads);
    router.start();
    let (ids, mut xs, mut streams) = run_first_half(&router, hidden);

    // A balanced fleet has nothing to rebalance.
    let moves = router.rebalance();
    println!("\nrebalance on the balanced fleet: {} moves", moves.len());
    assert!(moves.is_empty(), "rebalance must be a no-op on a balanced fleet");

    // Placement is deterministic (least-loaded, ties to the lowest shard):
    // sessions alternate 0,1,0,1, so session 0 sits on shard 0. Move it.
    let t = Instant::now();
    router.migrate_session(ids[0], 1).expect("explicit migration");
    let move_us = t.elapsed().as_secs_f64() * 1e6;
    println!("migrate_session: session {} -> shard 1 in {move_us:.1} us", ids[0]);

    // The move left a 3-vs-1 spread; rebalance evens it back out.
    let moves = router.rebalance();
    for m in &moves {
        println!("rebalance: session {} shard {} -> shard {}", m.session, m.from, m.to);
    }
    assert_eq!(moves.len(), 1, "one move re-evens a 3-vs-1 spread");

    // Dead-shard recovery: drain shard 0 and re-home its survivors from
    // the drain report.
    let report = router.drain_shard(0);
    assert!(report.is_quiesced(), "drained shard still holds queued work");
    let recovered = router.recover_shard(&report);
    for m in &recovered {
        println!("recover_shard: session {} shard {} -> shard {}", m.session, m.from, m.to);
    }
    assert_eq!(recovered.len(), 2, "both shard-0 survivors needed re-homing");

    let t = Instant::now();
    run_second_half(&router, &ids, &mut xs, &mut streams);
    let decode_s = t.elapsed().as_secs_f64();
    let mut generated = 0u64;
    for id in &ids {
        generated += router.close_session(*id).unwrap();
    }
    let snap = router.metrics_snapshot();
    router.shutdown();

    // --- Baseline run: identical traffic, no migrations. -----------------
    let mut baseline_router = make_router(&model, fused, total_threads);
    baseline_router.start();
    let (bids, mut bxs, mut baseline) = run_first_half(&baseline_router, hidden);
    run_second_half(&baseline_router, &bids, &mut bxs, &mut baseline);
    for id in &bids {
        baseline_router.close_session(*id).unwrap();
    }
    baseline_router.shutdown();

    let mut mismatches = 0usize;
    for (s, (a, b)) in streams.iter().zip(&baseline).enumerate() {
        assert_eq!(a.len(), STEPS_BEFORE + STEPS_AFTER);
        for (t, (ya, yb)) in a.iter().zip(b).enumerate() {
            if ya != yb {
                eprintln!("MISMATCH: session {s} step {t} differs from unmigrated baseline");
                mismatches += 1;
            }
        }
    }

    // --- Metrics: the paged-KV + migration families, fleet-wide. ---------
    let text = pl_metrics::render_prometheus(&snap);
    println!("\n=== aggregated metrics (Prometheus text format) ===");
    for family in
        ["pl_kv_pages_free", "pl_kv_pages_shared", "pl_kv_sessions_spilled", "pl_migrations_total"]
    {
        for line in text.lines().filter(|l| l.contains(family)) {
            println!("{line}");
        }
        assert!(text.contains(family), "metrics dump is missing {family}");
    }
    let migrations: u64 = (0..SHARDS)
        .map(|s| snap.counter_value("pl_migrations_total", &[("shard", &s.to_string())]))
        .sum();

    // --- Trajectory row. -------------------------------------------------
    let fp = pl_retune::host_fingerprint(Platform::generic_host(total_threads).name, total_threads);
    let mut artifact = BenchArtifact::load(&pl_bench::workspace_path(SERVE_ARTIFACT));
    artifact.upsert(BenchRow {
        mode: format!("migrate-{mode}"),
        batch: 1,
        shards: SHARDS,
        steps_per_s: (SESSIONS * STEPS_AFTER) as f64 / decode_s,
        p99_us: move_us,
        fingerprint: fp,
    });
    artifact.save(&pl_bench::workspace_path(SERVE_ARTIFACT)).expect("write BENCH_serve.json");
    println!("\nwrote {} rows to {SERVE_ARTIFACT}", artifact.rows().len());

    // --- Assertions. -----------------------------------------------------
    assert_eq!(generated, (SESSIONS * (STEPS_BEFORE + STEPS_AFTER)) as u64);
    assert_eq!(migrations, 4, "explicit move + rebalance + two recovery re-homes");
    assert_eq!(mismatches, 0, "migrated streams must be bit-identical to the unmigrated baseline");
    println!(
        "\nOK [{mode} mode]: {SESSIONS} sessions, {migrations} migrations mid-stream \
         (explicit + recovery), all streams bit-identical to the unmigrated baseline; \
         explicit move took {move_us:.1} us"
    );
}
