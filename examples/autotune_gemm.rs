//! Auto-tuning a GEMM (paper §II-D + Fig. 1): generate candidate
//! loop_spec_strings under constraints, score them with the offline
//! performance model, verify the top candidates by measurement, and
//! persist the winner in the tuning database.
//!
//! ```sh
//! cargo run --release --example autotune_gemm
//! ```

use pl_autotuner::{
    blocks_for_spec, tune_gemm_modeled, Constraints, DbEntry, GemmProblem, TuningDb,
};
use pl_kernels::{Gemm, GemmShape, GemmTuning};
use pl_perfmodel::Platform;
use pl_runtime::global_pool;
use pl_tensor::{fill_uniform, BlockedMatrix, DType, Xorshift};

fn main() {
    let (m, n, k) = (384usize, 256usize, 384usize);
    let shape = GemmShape::with_default_blocks(m, n, k);
    let pool = global_pool();
    let host = Platform::generic_host(pool.nthreads());
    let problem =
        GemmProblem { m, n, k, bm: shape.bm, bn: shape.bn, bk: shape.bk, dtype: DType::F32 };

    // Phase 1: offline, model-based search (cross-platform capable).
    let constraints = Constraints::gemm(1, 2, 2, 200);
    let modeled = tune_gemm_modeled(&problem, &constraints, &host, pool.nthreads());
    println!(
        "modeled {} candidates in {:.2}s; top-5:",
        modeled.evaluated.len(),
        modeled.search_seconds
    );
    for c in modeled.evaluated.iter().take(5) {
        println!("  {:<12} {:>8.1} GF (modeled)", c.spec, c.score);
    }

    // Phase 2: measure the top-5 on the real kernel, pick the winner.
    let mut rng = Xorshift::new(1);
    let mut a_cm = vec![0.0f32; m * k];
    let mut b_cm = vec![0.0f32; k * n];
    fill_uniform(&mut a_cm, &mut rng, -0.5, 0.5);
    fill_uniform(&mut b_cm, &mut rng, -0.5, 0.5);
    let mut a = BlockedMatrix::<f32>::a_layout(m, k, shape.bm, shape.bk).unwrap();
    a.pack_from_colmajor(&a_cm);
    let mut b = BlockedMatrix::<f32>::b_layout(k, n, shape.bk, shape.bn).unwrap();
    b.pack_from_colmajor(&b_cm);

    let mut best: Option<(String, f64)> = None;
    for cand in modeled.evaluated.iter().take(5) {
        let Some(blocks) = blocks_for_spec(&problem, &cand.spec) else { continue };
        let tuning = GemmTuning {
            spec: cand.spec.clone(),
            k_step: 1,
            a_blocks: blocks[0].clone(),
            b_blocks: blocks[1].clone(),
            c_blocks: blocks[2].clone(),
        };
        let Ok(kernel) = Gemm::<f32, f32, f32>::new(shape, tuning) else { continue };
        let mut c = BlockedMatrix::<f32>::c_layout(m, n, shape.bm, shape.bn).unwrap();
        kernel.execute(&a, &b, &mut c, pool).unwrap(); // warm-up
        let t0 = std::time::Instant::now();
        for _ in 0..5 {
            kernel.execute(&a, &b, &mut c, pool).unwrap();
        }
        let gf = shape.flops() as f64 / (t0.elapsed().as_secs_f64() / 5.0) / 1e9;
        println!("  {:<12} {gf:>8.1} GF (measured)", cand.spec);
        if best.as_ref().is_none_or(|(_, g)| gf > *g) {
            best = Some((cand.spec.clone(), gf));
        }
    }

    let (spec, gf) = best.expect("at least one candidate measured");
    println!("\nwinner: {spec} at {gf:.1} GF");

    // Phase 3: persist for runtime lookup (Fig. 1, off-line database).
    let mut db = TuningDb::new();
    let key = TuningDb::gemm_key("host", m, n, k, "f32");
    db.put(&key, DbEntry { spec: spec.clone(), score: gf });
    let path = std::env::temp_dir().join("parlooper_tuning.tsv");
    db.save(&path).expect("save db");
    println!("saved to {} under key {key}", path.display());
}
