//! LLM decoding example (paper §IV-A / Fig. 11): prompt prefill ("first
//! token") and KV-cached autoregressive steps ("next tokens") on a scaled
//! decoder, plus the full-size GPT-J/Llama2 accounting used by the Fig. 11
//! harness.
//!
//! ```sh
//! cargo run --release --example llm_generate
//! ```

use pl_dnn::{Decoder, DecoderConfig};
use pl_runtime::global_pool;
use pl_tensor::{fill_uniform, Xorshift};

fn main() {
    let pool = global_pool();
    let cfg = DecoderConfig { layers: 2, hidden: 128, heads: 4, ffn: 256, vocab: 512, ffn_mats: 2 };
    let prompt = 32usize;
    let generate = 8usize;
    let mut decoder = Decoder::new(cfg, prompt + generate, 5);

    let mut rng = Xorshift::new(6);
    let mut x = vec![0.0f32; cfg.hidden * prompt];
    fill_uniform(&mut x, &mut rng, -0.5, 0.5);

    let t0 = std::time::Instant::now();
    let mut state = decoder.prefill(&x, prompt, pool);
    let t_first = t0.elapsed().as_secs_f64();
    println!("prefill {prompt} tokens: {:.2} ms (first-token latency)", t_first * 1e3);

    let mut next_times = Vec::new();
    for i in 0..generate {
        // Feed the last hidden state back in (greedy hidden-state loop;
        // a real LM would sample a token and embed it).
        let last = state[state.len() - cfg.hidden..].to_vec();
        let t0 = std::time::Instant::now();
        state = decoder.step(&last, pool);
        let dt = t0.elapsed().as_secs_f64();
        next_times.push(dt);
        println!("  token {i}: {:.2} ms, {} cached", dt * 1e3, decoder.cached_tokens());
    }
    let avg_next = next_times.iter().sum::<f64>() / next_times.len() as f64;
    println!(
        "avg next-token {:.2} ms; prefill/next ratio {:.1}x",
        avg_next * 1e3,
        t_first / avg_next
    );

    // Full-size accounting (what Fig. 11 pushes through the platform
    // roofline).
    for full in [DecoderConfig::gptj_6b(), DecoderConfig::llama2_13b()] {
        println!(
            "\n{:>11}: {:.1}B params, first-token {:.1} GFLOP @1024, next-token {:.2} GFLOP, weights {:.1} GB (bf16)",
            if full.layers == 28 { "GPT-J-6B" } else { "Llama2-13B" },
            full.params() / 1e9,
            full.first_token_flops(1024) / 1e9,
            full.next_token_flops(1024) / 1e9,
            full.weight_bytes(2) / 1e9,
        );
    }
}
