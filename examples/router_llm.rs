//! End-to-end pl-router demo: sharded scale-out serving over
//! core-partitioned `Server` instances.
//!
//! Phase 1 (correctness): N concurrent client sessions run prefill + a
//! closed decode loop through a 2-shard [`pl_router::Router`] (sessions
//! placed least-loaded, affine to their shard). In the default serial
//! mode the *same* per-session traffic is then replayed through a single
//! `pl_serve::Server`, and every session's whole output stream must be
//! **bit-identical** — routing must be invisible to the numerics. In
//! `--fused` mode each routed stream is checked against a sequential
//! unbatched replay to ≤ 1e-5 relative error (the fused path's
//! reassociation tolerance).
//!
//! Phase 2 (scaling): the same closed-loop load is driven at 1 shard and
//! at N shards over the *same* total thread budget (split disjointly),
//! and the measured steps/s speedup is printed next to the
//! `pl_perfmodel::ScalingModel` projection (the paper's Table I
//! methodology, recalibrated to serving shards). Both rows land in the
//! machine-readable `BENCH_serve.json` trajectory artifact.
//!
//! Run: `cargo run --release --example router_llm [-- --fused] [--shards N]`

use pl_bench::{
    measure_router_steps_per_s, router_mode_name, BenchArtifact, BenchRow, RouterLoad,
    ROUTING_OVERHEAD, SERVE_ARTIFACT,
};
use pl_dnn::{Decoder, DecoderConfig, DecoderModel};
use pl_perfmodel::Platform;
use pl_router::{Router, RouterConfig};
use pl_runtime::{default_threads, ThreadPool};
use pl_serve::{Server, ServerConfig};
use pl_tensor::{fill_uniform, max_rel_err, Xorshift};
use std::sync::Arc;
use std::time::Duration;

const SESSIONS: usize = 6;
const TENANTS: usize = 2;
const PROMPT: usize = 4;
const STEPS: usize = 24;
const KV: usize = 64;
const FUSED_TOL: f32 = 1e-5;

fn prompt_for(session: usize, hidden: usize) -> Vec<f32> {
    let mut x = vec![0.0f32; hidden * PROMPT];
    fill_uniform(&mut x, &mut Xorshift::new(9000 + session as u64), -0.5, 0.5);
    x
}

fn last_token(y: &[f32], hidden: usize) -> Vec<f32> {
    y[y.len() - hidden..].to_vec()
}

fn server_cfg(fused: bool) -> ServerConfig {
    ServerConfig {
        tenants: TENANTS,
        max_batch: SESSIONS,
        kv_capacity: KV,
        coalesce_wait: Duration::from_millis(2),
        fused,
        ..Default::default()
    }
}

/// Drives the standard closed-loop traffic through any `step`-shaped
/// endpoint; returns every session's full output stream.
fn drive_clients(
    hidden: usize,
    create: impl Fn(usize) -> u64 + Sync,
    prefill: impl Fn(u64, &[f32], usize) -> Vec<f32> + Sync,
    step: impl Fn(u64, &[f32]) -> Vec<f32> + Sync,
    close: impl Fn(u64) + Sync,
) -> Vec<Vec<Vec<f32>>> {
    let mut streams: Vec<Vec<Vec<f32>>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for s in 0..SESSIONS {
            let (create, prefill, step, close) = (&create, &prefill, &step, &close);
            handles.push(scope.spawn(move || {
                let id = create(s);
                let y = prefill(id, &prompt_for(s, hidden), PROMPT);
                let mut x = last_token(&y, hidden);
                let mut outs = Vec::with_capacity(STEPS);
                for _ in 0..STEPS {
                    let y = step(id, &x);
                    x = y.clone();
                    outs.push(y);
                }
                close(id);
                outs
            }));
        }
        for h in handles {
            streams.push(h.join().unwrap());
        }
    });
    streams
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fused = args.iter().any(|a| a == "--fused")
        || std::env::var("PL_SERVE_FUSED").is_ok_and(|v| v == "1");
    let shards = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2usize)
        .max(1);
    let cfg = DecoderConfig::scaled_for_tests();
    let hidden = cfg.hidden;
    let model = Arc::new(DecoderModel::new(cfg, 7777));
    let total_threads = default_threads().min(8).max(shards);
    println!(
        "pl-router demo [{} mode]: {shards} shards x {:?} threads, {SESSIONS} sessions / \
         {TENANTS} tenants, {PROMPT}-token prompts + {STEPS} decode steps each",
        if fused { "fused" } else { "serial" },
        pl_router::partition_threads(total_threads, shards),
    );

    // --- Phase 1: correctness through the sharded tier. -----------------
    let mut router = Router::new(
        Arc::clone(&model),
        RouterConfig {
            shards,
            total_threads,
            routing_overhead: ROUTING_OVERHEAD,
            server: server_cfg(fused),
        },
    )
    .expect("router config");
    let warmed = router.warm_tuning(&Platform::zen4());
    println!("tuning DB warmed once on shard 0 ({warmed} entries), adopted by {shards} shards");
    router.start();
    let routed = drive_clients(
        hidden,
        |s| router.create_session(s % TENANTS).expect("admitted"),
        |id, x, t| router.prefill(id, x, t).unwrap(),
        |id, x| router.step(id, x).unwrap(),
        |id| {
            router.close_session(id).unwrap();
        },
    );
    let per_shard = router.shard_stats();
    let agg = router.stats();
    router.shutdown();

    println!("\n=== per-shard / aggregated stats ===");
    for (i, s) in per_shard.iter().enumerate() {
        println!(
            "shard {i}: completed {:>5}  batches {:>4}  mean batch {:>5.2}  p99 {:>6} us",
            s.completed, s.batches, s.mean_batch, s.p99_us
        );
    }
    println!(
        "fleet:   completed {:>5}  batches {:>4}  mean batch {:>5.2}  p99 {:>6} us",
        agg.completed, agg.batches, agg.mean_batch, agg.p99_us
    );
    println!("aggregated snapshot (JSON): {}", agg.to_json());

    let mut mismatches = 0usize;
    let mut worst_rel = 0.0f32;
    if fused {
        // Fused reassociates across whatever batch composition each shard
        // saw; check every routed stream against a sequential unbatched
        // replay of that stream.
        let pool = ThreadPool::new(2);
        for (s, stream) in routed.iter().enumerate() {
            let mut d = Decoder::from_model(Arc::clone(&model), KV);
            let y = d.prefill(&prompt_for(s, hidden), PROMPT, &pool);
            let mut x = last_token(&y, hidden);
            for (t, served_y) in stream.iter().enumerate() {
                let y = d.step(&x, &pool);
                let err = max_rel_err(&y, served_y);
                worst_rel = worst_rel.max(err);
                if err > FUSED_TOL {
                    eprintln!("TOLERANCE EXCEEDED: session {s} step {t}: rel err {err}");
                    mismatches += 1;
                }
                x = served_y.clone();
            }
        }
    } else {
        // Serial mode: the identical per-session traffic through a single
        // Server must produce bit-identical streams — sharding is
        // numerically invisible.
        let single_pool = Arc::new(ThreadPool::new(total_threads));
        let mut single = Server::new(Arc::clone(&model), single_pool, server_cfg(false));
        single.start();
        let baseline = drive_clients(
            hidden,
            |s| single.create_session(s % TENANTS).expect("admitted"),
            |id, x, t| single.prefill(id, x, t).unwrap(),
            |id, x| single.step(id, x).unwrap(),
            |id| {
                single.close_session(id).unwrap();
            },
        );
        single.shutdown();
        for (s, (routed_s, single_s)) in routed.iter().zip(&baseline).enumerate() {
            for (t, (a, b)) in routed_s.iter().zip(single_s).enumerate() {
                if a != b {
                    eprintln!("MISMATCH vs single server: session {s} step {t}");
                    mismatches += 1;
                }
            }
        }
    }

    // --- Phase 2: measured scale-out vs the ScalingModel projection. ----
    println!("\n=== scale-out: measured vs ScalingModel projection ===");
    println!(
        "{:>7} {:>16} {:>12} {:>13} {:>8}",
        "shards", "steps/s", "measured x", "projected x", "p99 us"
    );
    let mode = router_mode_name(fused);
    // Same host fingerprint the retune evidence DB keys on: rows from
    // different machines coexist in the artifact instead of clobbering.
    let fp = pl_retune::host_fingerprint(Platform::generic_host(total_threads).name, total_threads);
    let mut artifact = BenchArtifact::load(&pl_bench::workspace_path(SERVE_ARTIFACT));
    let projection = pl_router::serving_scaling_model(ROUTING_OVERHEAD);
    let load = RouterLoad {
        sessions: SESSIONS,
        steps: 2 * STEPS,
        tenants: TENANTS,
        kv_capacity: KV,
        fused,
        seed: 40,
    };
    let mut single_sps = 0.0f64;
    let mut multi_speedup = 0.0f64;
    for n in [1usize, shards] {
        let m = measure_router_steps_per_s(&model, n, total_threads, &load);
        if n == 1 {
            single_sps = m.steps_per_s;
        }
        let measured_x = m.steps_per_s / single_sps.max(1e-9);
        if n == shards {
            multi_speedup = measured_x;
        }
        println!(
            "{n:>7} {:>16.1} {measured_x:>11.2}x {:>12.2}x {:>8}",
            m.steps_per_s,
            projection.projected_speedup(n),
            m.p99_us
        );
        artifact.upsert(BenchRow {
            mode: mode.to_string(),
            batch: SESSIONS,
            shards: n,
            steps_per_s: m.steps_per_s,
            p99_us: m.p99_us as f64,
            fingerprint: fp.clone(),
        });
        if n == shards && shards == 1 {
            break;
        }
    }
    artifact.save(&pl_bench::workspace_path(SERVE_ARTIFACT)).expect("write BENCH_serve.json");
    println!("wrote {} rows to {SERVE_ARTIFACT}", artifact.rows().len());

    // --- Assertions. -----------------------------------------------------
    assert_eq!(agg.completed, (SESSIONS * STEPS) as u64);
    assert_eq!(agg.prefills, SESSIONS as u64);
    for (i, s) in per_shard.iter().enumerate() {
        assert!(s.completed > 0, "shard {i} served no steps — placement is broken");
    }
    assert_eq!(
        mismatches,
        0,
        "routed outputs must match ({})",
        if fused {
            "<= 1e-5 relative vs unbatched replay"
        } else {
            "bit-identical vs single server"
        }
    );
    let reloaded = BenchArtifact::load(&pl_bench::workspace_path(SERVE_ARTIFACT));
    assert!(!reloaded.rows_at_shards(1).is_empty(), "artifact has 1-shard rows");
    if shards > 1 {
        assert!(!reloaded.rows_at_shards(shards).is_empty(), "artifact has {shards}-shard rows");
        assert!(multi_speedup > 0.0);
    }
    println!(
        "\nOK [{} mode]: {SESSIONS} sessions across {shards} shards, {}; measured \
         {shards}-shard speedup {multi_speedup:.2}x vs projected {:.2}x",
        if fused { "fused" } else { "serial" },
        if fused {
            format!("worst rel err {worst_rel:.2e} (tol {FUSED_TOL:.0e})")
        } else {
            "all streams bit-identical to the single-server run".to_string()
        },
        projection.projected_speedup(shards)
    );
}
