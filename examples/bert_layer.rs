//! End-to-end workload example (paper §IV): a BERT encoder built from the
//! fused PARLOOPER/TPP modules — dense fine-tuning step, then block-sparse
//! inference on the Block-SpMM kernel.
//!
//! ```sh
//! cargo run --release --example bert_layer
//! ```

use pl_dnn::sparse_bert::random_sparse_layer;
use pl_dnn::{BertConfig, BertEncoder};
use pl_runtime::global_pool;
use pl_tensor::{fill_uniform, Xorshift};

fn main() {
    let pool = global_pool();
    let cfg = BertConfig { hidden: 128, heads: 4, intermediate: 256, layers: 2, seq: 64 };
    let tokens = cfg.seq;
    println!(
        "BERT encoder: {} layers, hidden {}, {} heads, {} tokens",
        cfg.layers, cfg.hidden, cfg.heads, tokens
    );

    // Dense fine-tuning (Fig. 9 regime): loss should fall.
    let mut enc = BertEncoder::new(cfg, 7);
    let mut rng = Xorshift::new(8);
    let mut x = vec![0.0f32; cfg.hidden * tokens];
    let mut target = vec![0.0f32; cfg.hidden * tokens];
    fill_uniform(&mut x, &mut rng, -0.5, 0.5);
    fill_uniform(&mut target, &mut rng, -0.5, 0.5);
    let mut last = f32::MAX;
    for step in 0..5 {
        let loss = enc.train_step(&x, &target, tokens, 0.02, pool);
        println!("  step {step}: loss {loss:.5}");
        assert!(loss <= last * 1.1, "loss diverged");
        last = loss;
    }

    // Block-sparse inference (Fig. 10 regime): prune to 80 % 8x8 blocks.
    let (dense, sparse) = random_sparse_layer(cfg, 8, 0.8, 11);
    println!(
        "\nblock-sparse layer: {:.0}% sparsity, compressed weights {} KiB",
        sparse.sparsity() * 100.0,
        sparse.compressed_bytes() / 1024
    );
    let t0 = std::time::Instant::now();
    let yd = dense.forward(&x, tokens, pool).0;
    let t_dense = t0.elapsed();
    let t0 = std::time::Instant::now();
    let ys = sparse.forward(&x, tokens, pool);
    let t_sparse = t0.elapsed();
    println!(
        "dense {:.2} ms vs sparse {:.2} ms ({:.2}x)",
        t_dense.as_secs_f64() * 1e3,
        t_sparse.as_secs_f64() * 1e3,
        t_dense.as_secs_f64() / t_sparse.as_secs_f64()
    );
    // The pruned model's output differs from dense, but stays finite and
    // normalized (layernorm at the tail).
    assert!(ys.iter().all(|v| v.is_finite()));
    assert!(yd.iter().all(|v| v.is_finite()));
}
