//! Integration tests of the prepared-op API (`pl_dnn::prepared`):
//! plan-vs-free-function bitwise equivalence across all operand
//! orientations, and tuning-snapshot install semantics (a plan built
//! before `pl_dnn::tuning::install` re-resolves its kernels and keeps
//! producing identical values).

use pl_autotuner::{DbEntry, TuningDb};
use pl_dnn::matmul::{matmul, transpose_cm, Trans};
use pl_dnn::{tuning, MatmulPlan, SpmmPlan};
use pl_kernels::gemm::reference_gemm;
use pl_kernels::GemmShape;
use pl_runtime::ThreadPool;
use pl_tensor::{fill_uniform, BcscMatrix, Xorshift};

fn random(len: usize, seed: u64) -> Vec<f32> {
    let mut v = vec![0.0f32; len];
    fill_uniform(&mut v, &mut Xorshift::new(seed), -0.5, 0.5);
    v
}

#[test]
fn plan_is_bitwise_equal_to_free_matmul_for_all_orientations() {
    // The prepared plan packs the weight once and reuses a cached kernel;
    // the free function re-packs per call. Both must produce *bitwise*
    // identical outputs for every Trans combination — the plan migration
    // cannot move a single ulp.
    let pool = ThreadPool::new(4);
    let (m, n, k) = (48, 12, 36);
    let a = random(m * k, 1);
    let b = random(k * n, 2);
    let at = transpose_cm(&a, m, k); // (k x m) storing A^T
    let bt = transpose_cm(&b, k, n); // (n x k) storing B^T
    let want = reference_gemm(&a, &b, m, n, k);

    for (ta, a_buf) in [(Trans::No, &a), (Trans::Yes, &at)] {
        for (tb, b_buf) in [(Trans::No, &b), (Trans::Yes, &bt)] {
            let free = matmul(a_buf, ta, b_buf, tb, m, n, k, &pool);
            let plan = MatmulPlan::new(a_buf, ta, m, k);
            let act: Vec<f32> = match tb {
                Trans::No => b_buf.clone(),
                Trans::Yes => transpose_cm(b_buf, n, k),
            };
            let first = plan.execute(&act, n, &pool);
            let second = plan.execute(&act, n, &pool); // cached kernel
            assert_eq!(free, first, "plan != free function ({ta:?}, {tb:?})");
            assert_eq!(first, second, "cached-kernel re-execution drifted ({ta:?}, {tb:?})");
            for i in 0..m * n {
                assert!((first[i] - want[i]).abs() < 1e-3, "({ta:?}, {tb:?}) idx {i}");
            }
        }
    }
}

// One test exercises the whole install -> execute -> clear lifecycle (for
// both the GEMM and SpMM plans) so registry mutation never races a
// concurrently running sibling test.
#[test]
fn plan_built_before_snapshot_install_still_executes_correctly() {
    // Registry re-resolution semantics: a plan caches kernels tagged with
    // the tuning epoch; installing a snapshot afterwards makes the next
    // execution re-resolve against it. Values must be bitwise unchanged —
    // specs only move work between threads, never reassociate the
    // reduction.
    let pool = ThreadPool::new(4);
    let (m, n, k) = (64, 8, 64);
    let w = random(m * k, 3);
    let x = random(k * n, 4);
    let want = reference_gemm(&w, &x, m, n, k);

    tuning::clear();
    let plan = MatmulPlan::new(&w, Trans::No, m, k);
    plan.warm(n); // kernel resolved under the *pre-install* epoch
    let before = plan.execute(&x, n, &pool);

    // Install a snapshot that covers this exact shape with a different
    // (but legal) spec, plus a corrupt entry for a sibling shape the plan
    // must degrade on rather than panic.
    let mut db = TuningDb::new();
    let platform = "PreparedTest";
    db.put(
        &TuningDb::gemm_key(platform, m, n, k, "f32"),
        DbEntry { spec: "aBC".into(), score: 9.0 },
    );
    db.put(
        &TuningDb::gemm_key(platform, m, 2 * n, k, "f32"),
        DbEntry { spec: "azbc".into(), score: 1.0 },
    );
    let epoch_before = tuning::epoch();
    tuning::install(platform, db);
    assert!(tuning::epoch() > epoch_before);

    // The pre-built plan picks the snapshot up on its next execution.
    let shape = GemmShape::with_default_blocks(m, n, k);
    assert_eq!(
        tuning::lookup_gemm(&shape, pl_tensor::DType::F32).expect("warmed shape resolves").spec,
        "aBC"
    );
    let after = plan.execute(&x, n, &pool);
    assert_eq!(before, after, "snapshot install changed values");
    for i in 0..m * n {
        assert!((after[i] - want[i]).abs() < 1e-3, "idx {i}");
    }

    // The corrupt entry degrades to the built-in spec, not a panic.
    let x2 = random(k * 2 * n, 5);
    let corrupt = plan.execute(&x2, 2 * n, &pool);
    let want2 = reference_gemm(&w, &x2, m, 2 * n, k);
    for i in 0..m * 2 * n {
        assert!((corrupt[i] - want2[i]).abs() < 1e-3, "idx {i}");
    }

    // Clearing the registry re-resolves again; still bitwise stable.
    tuning::clear();
    assert_eq!(plan.execute(&x, n, &pool), before);

    // --- The SpMM plan side of the same lifecycle. ----------------------
    let (m, k, tokens) = (32, 32, 8);
    let mut rng = Xorshift::new(6);
    let a = BcscMatrix::<f32>::random(m, k, 8, 8, 0.6, &mut rng).unwrap();
    let x = random(k * tokens, 7);

    let free = pl_dnn::sparse_bert::spmm_matmul(&a, &x, tokens, &pool);
    let plan = SpmmPlan::new(a);
    let got = plan.execute(&x, tokens, &pool);
    assert_eq!(free, got, "SpmmPlan != pack-per-call bridge");

    // The plan-reported problem warms a key that lookup_spmm then hits.
    let problem = plan.problem(tokens);
    let mut db = TuningDb::new();
    let platform = pl_perfmodel::Platform::zen4();
    let constraints = pl_autotuner::Constraints::gemm(0, 1, 1, 100);
    let added = pl_autotuner::warm_spmm_db(&mut db, &[problem], &constraints, &platform, 4);
    assert_eq!(added, 1);
    tuning::install(platform.name, db);
    let shape = GemmShape {
        m: problem.m,
        n: problem.n,
        k: problem.k,
        bm: problem.bm,
        bn: problem.bn,
        bk: problem.bk,
    };
    assert!(tuning::lookup_spmm(&shape).is_some(), "warmed spmm key must hit");
    // Executing through the tuned spec is value-identical.
    assert_eq!(plan.execute(&x, tokens, &pool), got);
    tuning::clear();
}
