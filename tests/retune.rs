//! Cross-crate integration of the pl-retune loop: harvest → rank →
//! measure → install against a real server, plus the persistence
//! contract (round-trip, fingerprint gating, corruption tolerance).
//!
//! The tuning registry (`pl_dnn::tuning`) is process-global, so exactly
//! one test in this binary mutates it
//! ([`retune_cycle_end_to_end_with_persistence_and_fallback`]); the
//! others are pure file tests.

use pl_autotuner::{DbEntry, TuningDb};
use pl_dnn::{tuning, Decoder, DecoderConfig, DecoderModel};
use pl_perfmodel::Platform;
use pl_retune::{
    host_fingerprint, load_measured_db, save_measured_db, warm_or_load, PersistError, RetuneConfig,
    Retuner, WarmSource,
};
use pl_runtime::ThreadPool;
use pl_serve::{Server, ServerConfig};
use pl_tensor::{fill_uniform, Xorshift};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pl_retune_e2e_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn sample_db() -> TuningDb {
    let mut db = TuningDb::new();
    db.put("gemm/host/32x1x32/f32", DbEntry { spec: "aCB".into(), score: 3.25 });
    db.put("gemm/host/64x8x32/f32", DbEntry { spec: "BCa".into(), score: 17.0 });
    db.put("gemm/host/32x8x64/f32", DbEntry { spec: "Cab".into(), score: 11.5 });
    db
}

#[test]
fn disk_roundtrip_yields_identical_lookups() {
    let path = tmp("roundtrip_lookups.db");
    let fp = host_fingerprint("host", 2);
    let db = sample_db();
    save_measured_db(&path, &fp, &db).unwrap();
    let loaded = load_measured_db(&path, &fp).unwrap();
    assert_eq!(loaded.len(), db.len());
    for (key, entry) in db.entries_sorted() {
        let got = loaded.get(key).unwrap_or_else(|| panic!("{key} lost in round-trip"));
        assert_eq!(got.spec, entry.spec, "{key}: spec drifted");
        assert!((got.score - entry.score).abs() < 1e-12, "{key}: score drifted");
    }
    // A second save of the loaded DB is byte-identical (sorted entries):
    // the file is a fixpoint, so repeated persist cycles never churn.
    let path2 = tmp("roundtrip_lookups2.db");
    save_measured_db(&path2, &fp, &loaded).unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), std::fs::read(&path2).unwrap());
}

#[test]
fn corrupt_and_foreign_files_error_instead_of_panicking() {
    let fp = host_fingerprint("host", 2);
    // Truncated: a valid header then EOF mid-entry is still a valid
    // (possibly empty) DB — but a file cut inside the *header* is not.
    let trunc = tmp("cut_header.db");
    std::fs::write(&trunc, "#pl-retune-db v1").unwrap();
    assert!(matches!(load_measured_db(&trunc, &fp).unwrap_err(), PersistError::Malformed(_)));
    // Binary junk is rejected either at the read (invalid UTF-8 → Io)
    // or at the header parse — an error both ways, never a panic.
    let garbage = tmp("garbage.db");
    std::fs::write(&garbage, b"\xff\xfenonsense\x00").unwrap();
    assert!(matches!(
        load_measured_db(&garbage, &fp).unwrap_err(),
        PersistError::Malformed(_) | PersistError::Io(_)
    ));
    let foreign = tmp("foreign_host.db");
    save_measured_db(&foreign, "plan9/mips/ancient/64t", &sample_db()).unwrap();
    assert!(matches!(
        load_measured_db(&foreign, &fp).unwrap_err(),
        PersistError::FingerprintMismatch { .. }
    ));
}

/// The tentpole, end to end and deterministic: traffic → harvest → a
/// deliberately poisoned incumbent → one retune cycle installs a
/// measured winner through exactly one registry-epoch bump → the
/// in-flight serial decode stream is bit-identical across every install
/// → the measured DB round-trips through disk → a foreign-fingerprint
/// file falls back to the fresh modeled search.
#[test]
fn retune_cycle_end_to_end_with_persistence_and_fallback() {
    const STEPS_PER_PHASE: usize = 4;
    let threads = 2;
    let platform = Platform::generic_host(threads);
    let model = Arc::new(DecoderModel::new(DecoderConfig::scaled_for_tests(), 77));
    let pool = Arc::new(ThreadPool::new(threads));
    let server = Server::new(
        Arc::clone(&model),
        Arc::clone(&pool),
        ServerConfig {
            max_batch: 4,
            kv_capacity: 64,
            coalesce_wait: Duration::ZERO,
            ..Default::default()
        },
    );
    server.warm_tuning(&platform, threads);
    let hidden = model.config().hidden;
    let id = server.create_session(0).unwrap();
    let mut x0 = vec![0.0f32; hidden];
    fill_uniform(&mut x0, &mut Xorshift::new(4242), -0.5, 0.5);
    let mut x = x0.clone();
    let mut served: Vec<Vec<f32>> = Vec::new();
    let step = |x: &Vec<f32>, server: &Server| -> Vec<f32> {
        let rx = server.submit_step(id, x).unwrap();
        assert_eq!(server.pump(), 1);
        rx.recv().unwrap().unwrap()
    };

    // Phase 1: clean traffic (populates the harvest's statistics).
    for _ in 0..STEPS_PER_PHASE {
        x = step(&x, &server);
        served.push(x.clone());
    }
    let hot = server.hot_gemm_problems();
    assert!(!hot.is_empty(), "completed steps must harvest hot shapes");
    assert!(hot.iter().all(|(p, _)| p.n == 1), "serial traffic harvests width-1 shapes");

    // Phase 2: poison the hottest shape — an invalid spec with a huge
    // score, the stale-DB failure mode. Plans degrade (never panic) and
    // keep serving the same bits.
    let p = hot[0].0;
    let key = TuningDb::gemm_key(platform.name, p.m, p.n, p.k, &p.dtype.to_string());
    let mut poisoned = server.tuning_db().clone();
    poisoned.put(&key, DbEntry { spec: "zzz".into(), score: 1.0e9 });
    let epoch0 = tuning::epoch();
    server.adopt_tuning(platform.name, &poisoned);
    assert_eq!(tuning::epoch(), epoch0 + 1, "an install advances the epoch exactly once");
    for _ in 0..STEPS_PER_PHASE {
        x = step(&x, &server);
        served.push(x.clone());
    }

    // Phase 3: one retune cycle measures candidates off the serving
    // pool and installs the measured winner — one more epoch bump.
    let retuner = Retuner::new(
        platform.clone(),
        threads,
        RetuneConfig { budget: Duration::from_secs(30), ..Default::default() },
    );
    let report = retuner.run_cycle(&server, &ThreadPool::new(threads));
    assert!(report.changed(), "the poisoned incumbent must lose");
    assert_eq!(report.epoch_after, report.epoch_before + 1, "one install per changing cycle");
    let outcome = report.outcomes.iter().find(|o| o.key == key).expect("poisoned shape retuned");
    assert!(outcome.changed);
    assert_eq!(outcome.old_spec.as_deref(), Some("zzz"));
    assert!(outcome.old_gflops.is_none(), "an invalid spec is unmeasurable");
    assert_ne!(outcome.new_spec, "zzz");
    assert!(outcome.new_gflops > 0.0);
    assert!(outcome.candidates_measured > 0);
    // The cycle published its counters into the server's metrics plane.
    let metrics = server.metrics_snapshot();
    assert_eq!(metrics.counter_value("pl_retune_cycles_total", &[]), 1);
    assert!(metrics.counter_value("pl_retune_epoch_bumps_total", &[]) >= 1);
    assert!(metrics.counter_value("pl_retune_shapes_measured_total", &[]) >= 1);
    // Plans re-resolve from the installed snapshot: the server's DB now
    // carries the measured winner under the poisoned key.
    let installed = server.tuning_db().get(&key).expect("retuned key present").clone();
    assert_eq!(installed.spec, outcome.new_spec);
    for _ in 0..STEPS_PER_PHASE {
        x = step(&x, &server);
        served.push(x.clone());
    }
    server.close_session(id).unwrap();

    // The whole stream — spanning warm, poisoned, and retuned plans —
    // replayed against a sequential unbatched decoder, bitwise.
    let mut d = Decoder::from_model(Arc::clone(&model), 64);
    let mut x = x0;
    for (t, served_y) in served.iter().enumerate() {
        let y = d.step(&x, &pool);
        assert_eq!(&y, served_y, "step {t}: decode stream must be bit-identical across installs");
        x = y;
    }

    // Persistence: the measured DB round-trips and a matching
    // fingerprint loads it back verbatim...
    let fp = host_fingerprint(platform.name, threads);
    let snapshot = server.tuning_db().clone();
    let path = tmp("e2e_measured.db");
    save_measured_db(&path, &fp, &snapshot).unwrap();
    let loaded = load_measured_db(&path, &fp).unwrap();
    assert_eq!(loaded.len(), snapshot.len());
    assert_eq!(loaded.get(&key).unwrap().spec, outcome.new_spec);

    // ...while a foreign-fingerprint file makes warm_or_load fall back
    // to the fresh modeled search (with the reason surfaced).
    let foreign_path = tmp("e2e_foreign.db");
    save_measured_db(&foreign_path, "otheros/otherarch/other/64t", &snapshot).unwrap();
    let restarted = Server::new(
        Arc::clone(&model),
        Arc::clone(&pool),
        ServerConfig { max_batch: 4, kv_capacity: 64, ..Default::default() },
    );
    match warm_or_load(&restarted, &platform, threads, &foreign_path) {
        WarmSource::Warmed(n, why) => {
            assert!(n > 0, "fallback must run the fresh search");
            assert!(why.contains("fingerprint mismatch"), "reason must name the mismatch: {why}");
        }
        WarmSource::Loaded(n) => panic!("foreign DB must not be adopted ({n} entries)"),
    }
}
