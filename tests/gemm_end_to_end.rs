//! Cross-crate integration: the PARLOOPER GEMM kernel against the scalar
//! reference under many loop instantiations — the core correctness claim
//! of the framework (any legal spec computes the same C).

use pl_kernels::gemm::reference_gemm;
use pl_kernels::{Gemm, GemmShape, GemmTuning};
use pl_runtime::ThreadPool;
use pl_tensor::{fill_uniform, BlockedMatrix, Xorshift};

fn problem(sh: GemmShape, seed: u64) -> (BlockedMatrix<f32>, BlockedMatrix<f32>, Vec<f32>) {
    let mut rng = Xorshift::new(seed);
    let mut a_cm = vec![0.0f32; sh.m * sh.k];
    let mut b_cm = vec![0.0f32; sh.k * sh.n];
    fill_uniform(&mut a_cm, &mut rng, -0.5, 0.5);
    fill_uniform(&mut b_cm, &mut rng, -0.5, 0.5);
    let mut a = BlockedMatrix::a_layout(sh.m, sh.k, sh.bm, sh.bk).unwrap();
    a.pack_from_colmajor(&a_cm);
    let mut b = BlockedMatrix::b_layout(sh.k, sh.n, sh.bk, sh.bn).unwrap();
    b.pack_from_colmajor(&b_cm);
    let c_ref = reference_gemm(&a_cm, &b_cm, sh.m, sh.n, sh.k);
    (a, b, c_ref)
}

#[test]
fn schedule_independence_across_many_specs() {
    let pool = ThreadPool::new(4);
    let sh = GemmShape { m: 48, n: 32, k: 64, bm: 8, bn: 8, bk: 8 };
    let (a, b, c_ref) = problem(sh, 3);

    let parallel_specs: Vec<GemmTuning> = vec![
        GemmTuning::simple("aBC"),
        GemmTuning::simple("BCa"),
        GemmTuning::simple("Bca"),
        GemmTuning::simple("aCB"),
        GemmTuning::simple("cBa"),
        GemmTuning { k_step: 8, ..GemmTuning::simple("BCa") },
        GemmTuning {
            spec: "bcaBCb".into(),
            k_step: 2,
            a_blocks: vec![],
            b_blocks: vec![6, 3],
            c_blocks: vec![2],
        },
        GemmTuning {
            spec: "BCa @ schedule(dynamic,2)".into(),
            k_step: 4,
            a_blocks: vec![],
            b_blocks: vec![],
            c_blocks: vec![],
        },
        GemmTuning {
            spec: "B{R:2}C{C:2}a".into(),
            k_step: 1,
            a_blocks: vec![],
            b_blocks: vec![],
            c_blocks: vec![],
        },
    ];
    for t in parallel_specs {
        let label = t.spec.clone();
        let gemm = Gemm::<f32, f32, f32>::new(sh, t).unwrap();
        let mut c = BlockedMatrix::c_layout(sh.m, sh.n, sh.bm, sh.bn).unwrap();
        gemm.execute(&a, &b, &mut c, &pool).unwrap();
        let got = c.unpack_to_colmajor();
        for i in 0..got.len() {
            assert!(
                (got[i] - c_ref[i]).abs() < 1e-3,
                "spec {label}: idx {i}: {} vs {}",
                got[i],
                c_ref[i]
            );
        }
    }
}

#[test]
fn plan_cache_reuses_compiled_nests() {
    let sh = GemmShape { m: 32, n: 32, k: 32, bm: 8, bn: 8, bk: 8 };
    let before = parlooper::plan_cache_stats();
    for _ in 0..5 {
        let _ = Gemm::<f32, f32, f32>::new(sh, GemmTuning::simple("aBC")).unwrap();
    }
    let after = parlooper::plan_cache_stats();
    assert!(after.hits >= before.hits + 4, "{before:?} -> {after:?}");
}

#[test]
fn team_size_independence() {
    // The same parallel spec on 1/2/4 threads computes the same C.
    let sh = GemmShape { m: 32, n: 32, k: 32, bm: 8, bn: 8, bk: 8 };
    let (a, b, c_ref) = problem(sh, 9);
    for threads in [1usize, 2, 4] {
        let pool = ThreadPool::new(threads);
        let gemm = Gemm::<f32, f32, f32>::new(sh, GemmTuning::simple("BCa")).unwrap();
        let mut c = BlockedMatrix::c_layout(sh.m, sh.n, sh.bm, sh.bn).unwrap();
        gemm.execute(&a, &b, &mut c, &pool).unwrap();
        let got = c.unpack_to_colmajor();
        for i in 0..got.len() {
            assert!((got[i] - c_ref[i]).abs() < 1e-3, "threads {threads} idx {i}");
        }
    }
}

#[test]
fn bf16_matches_quantized_reference_end_to_end() {
    use pl_tensor::Bf16;
    let pool = ThreadPool::new(2);
    let sh = GemmShape { m: 32, n: 16, k: 32, bm: 8, bn: 8, bk: 8 };
    let mut rng = Xorshift::new(13);
    let mut a_cm = vec![0.0f32; sh.m * sh.k];
    let mut b_cm = vec![0.0f32; sh.k * sh.n];
    fill_uniform(&mut a_cm, &mut rng, -0.5, 0.5);
    fill_uniform(&mut b_cm, &mut rng, -0.5, 0.5);
    let mut a = BlockedMatrix::<Bf16>::a_layout(sh.m, sh.k, sh.bm, sh.bk).unwrap();
    a.pack_from_colmajor(&a_cm);
    let mut b = BlockedMatrix::<Bf16>::b_layout_vnni(sh.k, sh.n, sh.bk, sh.bn, 2).unwrap();
    b.pack_from_colmajor(&b_cm);
    let c_ref = reference_gemm(&a.unpack_to_colmajor(), &b.unpack_to_colmajor(), sh.m, sh.n, sh.k);

    let gemm =
        Gemm::<Bf16, Bf16, f32>::new_vnni(sh, GemmTuning::default_parallel(sh.kb()), 2).unwrap();
    let mut c = BlockedMatrix::<f32>::c_layout(sh.m, sh.n, sh.bm, sh.bn).unwrap();
    gemm.execute(&a, &b, &mut c, &pool).unwrap();
    let got = c.unpack_to_colmajor();
    for i in 0..got.len() {
        assert!((got[i] - c_ref[i]).abs() < 1e-3);
    }
}
