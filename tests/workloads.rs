//! Cross-crate integration over the end-to-end workloads.

use pl_dnn::sparse_bert::random_sparse_layer;
use pl_dnn::{BertConfig, BertEncoder, Decoder, DecoderConfig};
use pl_runtime::ThreadPool;
use pl_tensor::{fill_uniform, Xorshift};

#[test]
fn bert_fine_tuning_converges() {
    let pool = ThreadPool::new(2);
    let cfg = BertConfig { hidden: 16, heads: 2, intermediate: 32, layers: 2, seq: 8 };
    let mut enc = BertEncoder::new(cfg, 17);
    let tokens = 8;
    let mut rng = Xorshift::new(18);
    let mut x = vec![0.0f32; cfg.hidden * tokens];
    let mut target = vec![0.0f32; cfg.hidden * tokens];
    fill_uniform(&mut x, &mut rng, -0.5, 0.5);
    fill_uniform(&mut target, &mut rng, -0.5, 0.5);
    let first = enc.train_step(&x, &target, tokens, 0.1, &pool);
    let mut last = first;
    for _ in 0..40 {
        last = enc.train_step(&x, &target, tokens, 0.1, &pool);
    }
    // The output is layernormed and the LN affine params are frozen, so a
    // random target cannot be fit exactly; require a clear downward trend.
    assert!(last < 0.9 * first, "fine-tuning failed to converge: {first} -> {last}");
}

#[test]
fn sparse_bert_at_zero_sparsity_equals_dense() {
    let pool = ThreadPool::new(2);
    let cfg = BertConfig { hidden: 16, heads: 2, intermediate: 32, layers: 1, seq: 8 };
    let (dense, sparse) = random_sparse_layer(cfg, 8, 0.0, 23);
    let mut x = vec![0.0f32; cfg.hidden * 8];
    fill_uniform(&mut x, &mut Xorshift::new(24), -0.5, 0.5);
    let (yd, _) = dense.forward(&x, 8, &pool);
    let ys = sparse.forward(&x, 8, &pool);
    for (a, b) in yd.iter().zip(&ys) {
        assert!((a - b).abs() < 1e-3);
    }
}

#[test]
fn llm_kv_cache_equals_recompute() {
    let pool = ThreadPool::new(2);
    let cfg = DecoderConfig::scaled_for_tests();
    let tokens = 5;
    let mut x = vec![0.0f32; cfg.hidden * tokens];
    fill_uniform(&mut x, &mut Xorshift::new(25), -0.5, 0.5);
    let mut full = Decoder::new(cfg, 8, 3);
    let y_full = full.prefill(&x, tokens, &pool);
    let mut inc = Decoder::new(cfg, 8, 3);
    let mut last = Vec::new();
    for t in 0..tokens {
        last = inc.step(&x[t * cfg.hidden..(t + 1) * cfg.hidden], &pool);
    }
    let tail = &y_full[(tokens - 1) * cfg.hidden..];
    for (a, b) in tail.iter().zip(&last) {
        assert!((a - b).abs() < 1e-3);
    }
}

#[test]
fn resnet_conv_layer_through_kernels() {
    use pl_kernels::{ConvForward, ConvTuning};
    use pl_tensor::{ActTensor, ConvWeights};
    // ResNet-50 layer 18 (3x3 512->512 at 7x7), scaled channels.
    let shapes = pl_dnn::resnet50_conv_shapes(1, 16, 16);
    let mut shape = shapes[17].shape;
    assert_eq!(shape.r, 3);
    shape.c = 32;
    shape.k = 32;
    shape.bc = 16;
    shape.bk = 16;
    let pool = ThreadPool::new(2);
    let conv = ConvForward::<f32>::new(shape, ConvTuning::default_for(&shape)).unwrap();
    let mut rng = Xorshift::new(31);
    let input = ActTensor::<f32>::from_fn(
        shape.n,
        shape.c,
        shape.h,
        shape.w,
        shape.bc,
        shape.pad,
        |_, _, _, _| rng.next_f32() - 0.5,
    )
    .unwrap();
    let weights = ConvWeights::<f32>::from_fn(
        shape.c,
        shape.k,
        shape.r,
        shape.s,
        shape.bc,
        shape.bk,
        |_, _, _, _| rng.next_f32() - 0.5,
    )
    .unwrap();
    let mut out =
        ActTensor::<f32>::new(shape.n, shape.k, shape.p(), shape.q(), shape.bk, 0).unwrap();
    conv.execute(&input, &weights, &mut out, &pool).unwrap();
    let reference = pl_kernels::conv::reference_conv(&shape, &input, &weights);
    let (p, q) = (shape.p(), shape.q());
    for ko in 0..shape.k {
        for ph in 0..p {
            for pw in 0..q {
                let got = out.get(0, ko, ph, pw);
                let want = reference[(ko * p + ph) * q + pw];
                assert!((got - want).abs() < 1e-3, "({ko},{ph},{pw})");
            }
        }
    }
}

#[test]
fn batchnorm_composes_with_conv() {
    use pl_dnn::BatchNorm;
    use pl_tensor::ActTensor;
    let pool = ThreadPool::new(2);
    let mut rng = Xorshift::new(41);
    let x = ActTensor::<f32>::from_fn(2, 8, 6, 6, 4, 0, |_, _, _, _| rng.next_f32() * 2.0).unwrap();
    let bn = BatchNorm::new(8);
    let mut y = ActTensor::<f32>::new(2, 8, 6, 6, 4, 0).unwrap();
    let _ = bn.forward(&x, &mut y, &pool);
    // Post-BN activations are standardized per channel.
    for ch in 0..8 {
        let mut s = 0.0f32;
        for ni in 0..2 {
            for yy in 0..6 {
                for xx in 0..6 {
                    s += y.get(ni, ch, yy, xx);
                }
            }
        }
        assert!((s / 72.0).abs() < 1e-4);
    }
}
