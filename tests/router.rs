//! Integration test of the pl-router scale-out tier: concurrent sessions
//! routed across core-partitioned shards must behave exactly like a
//! single server — bit-identical streams in serial mode, no cross-shard
//! state leakage, stats that aggregate coherently, drains that never
//! drop queued work.

use pl_dnn::{DecoderConfig, DecoderModel};
use pl_router::{Router, RouterConfig, RouterError};
use pl_runtime::ThreadPool;
use pl_serve::{Server, ServerConfig};
use pl_tensor::{fill_uniform, Xorshift};
use std::sync::Arc;
use std::time::Duration;

const SESSIONS: usize = 6;
const TENANTS: usize = 2;
const PROMPT: usize = 3;
const STEPS: usize = 8;
const KV: usize = 32;

fn prompt_for(session: usize, hidden: usize) -> Vec<f32> {
    let mut x = vec![0.0f32; hidden * PROMPT];
    fill_uniform(&mut x, &mut Xorshift::new(12000 + session as u64), -0.5, 0.5);
    x
}

fn last_token(y: &[f32], hidden: usize) -> Vec<f32> {
    y[y.len() - hidden..].to_vec()
}

fn server_cfg() -> ServerConfig {
    ServerConfig {
        tenants: TENANTS,
        max_batch: SESSIONS,
        kv_capacity: KV,
        coalesce_wait: Duration::from_millis(1),
        ..Default::default()
    }
}

#[test]
fn two_shard_routing_is_bit_identical_to_a_single_server() {
    let cfg = DecoderConfig::scaled_for_tests();
    let hidden = cfg.hidden;
    let model = Arc::new(DecoderModel::new(cfg, 20261));

    // The same per-session closed-loop traffic through both topologies.
    let drive = |step: &(dyn Fn(usize) -> Vec<Vec<f32>> + Sync)| -> Vec<Vec<Vec<f32>>> {
        let mut streams = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..SESSIONS).map(|s| scope.spawn(move || step(s))).collect();
            for h in handles {
                streams.push(h.join().unwrap());
            }
        });
        streams
    };

    let mut router = Router::new(
        Arc::clone(&model),
        RouterConfig { shards: 2, total_threads: 4, routing_overhead: 0.02, server: server_cfg() },
    )
    .unwrap();
    router.start();
    let routed = {
        let router = &router;
        drive(&|s| {
            let id = router.create_session(s % TENANTS).unwrap();
            let y = router.prefill(id, &prompt_for(s, hidden), PROMPT).unwrap();
            let mut x = last_token(&y, hidden);
            let mut outs = Vec::with_capacity(STEPS);
            for _ in 0..STEPS {
                let y = router.step(id, &x).unwrap();
                x = y.clone();
                outs.push(y);
            }
            assert_eq!(router.close_session(id).unwrap(), STEPS as u64);
            outs
        })
    };
    let per_shard = router.shard_stats();
    let agg = router.stats();
    router.shutdown();

    // Both shards participated, and the aggregate adds up exactly.
    assert_eq!(agg.completed, (SESSIONS * STEPS) as u64);
    assert_eq!(agg.prefills, SESSIONS as u64);
    assert_eq!(per_shard.len(), 2);
    for (i, s) in per_shard.iter().enumerate() {
        assert!(s.completed > 0, "shard {i} idle");
    }
    assert_eq!(per_shard.iter().map(|s| s.completed).sum::<u64>(), agg.completed);
    let json = agg.to_json();
    assert!(json.contains(&format!("\"completed\":{}", agg.completed)));

    let mut single = Server::new(Arc::clone(&model), Arc::new(ThreadPool::new(4)), server_cfg());
    single.start();
    let baseline = {
        let single = &single;
        drive(&|s| {
            let id = single.create_session(s % TENANTS).unwrap();
            let y = single.prefill(id, &prompt_for(s, hidden), PROMPT).unwrap();
            let mut x = last_token(&y, hidden);
            let mut outs = Vec::with_capacity(STEPS);
            for _ in 0..STEPS {
                let y = single.step(id, &x).unwrap();
                x = y.clone();
                outs.push(y);
            }
            single.close_session(id).unwrap();
            outs
        })
    };
    single.shutdown();

    for (s, (routed_s, single_s)) in routed.iter().zip(&baseline).enumerate() {
        assert_eq!(routed_s, single_s, "session {s}: routed stream diverged from single server");
    }
}

#[test]
fn sessions_are_isolated_across_shards() {
    // Two sessions with *identical local ids on different shards* (both
    // are each shard's first session) must produce independent streams:
    // the router namespace prevents cross-shard aliasing, and each
    // session's KV cache only ever sees its own tokens.
    let cfg = DecoderConfig::scaled_for_tests();
    let hidden = cfg.hidden;
    let model = Arc::new(DecoderModel::new(cfg, 31));
    let r = Router::new(
        model.clone(),
        RouterConfig {
            shards: 2,
            total_threads: 2,
            routing_overhead: 0.02,
            server: ServerConfig { coalesce_wait: Duration::ZERO, ..server_cfg() },
        },
    )
    .unwrap();
    let a = r.create_session(0).unwrap();
    let b = r.create_session(0).unwrap();
    assert_ne!(r.placement_of(a), r.placement_of(b));
    let xa = {
        let mut x = vec![0.0f32; hidden];
        fill_uniform(&mut x, &mut Xorshift::new(71), -0.5, 0.5);
        x
    };
    let xb = {
        let mut x = vec![0.0f32; hidden];
        fill_uniform(&mut x, &mut Xorshift::new(72), -0.5, 0.5);
        x
    };
    // Interleave: a, b, a, b — then replay each in isolation.
    let mut got_a: Vec<Vec<f32>> = Vec::new();
    let mut got_b: Vec<Vec<f32>> = Vec::new();
    for t in 0..2 {
        let ra =
            r.submit_step(a, if t == 0 { xa.as_slice() } else { got_a[0].as_slice() }).unwrap();
        let rb =
            r.submit_step(b, if t == 0 { xb.as_slice() } else { got_b[0].as_slice() }).unwrap();
        while r.pump_all() > 0 {}
        got_a.push(ra.recv().unwrap().unwrap());
        got_b.push(rb.recv().unwrap().unwrap());
    }
    let pool = ThreadPool::new(2);
    for (x0, got) in [(&xa, &got_a), (&xb, &got_b)] {
        let mut st = model.new_state(KV);
        let w0 = model.forward(&mut st, x0, 1, &pool);
        let w1 = model.forward(&mut st, &w0, 1, &pool);
        assert_eq!(got[0], w0);
        assert_eq!(got[1], w1);
    }
    assert_ne!(got_a, got_b, "distinct streams stayed distinct");
}

#[test]
fn drain_rebalances_placement_without_dropping_work() {
    let cfg = DecoderConfig::scaled_for_tests();
    let hidden = cfg.hidden;
    let model = Arc::new(DecoderModel::new(cfg, 88));
    let r = Router::new(
        model,
        RouterConfig {
            shards: 3,
            total_threads: 3,
            routing_overhead: 0.02,
            server: ServerConfig { coalesce_wait: Duration::ZERO, ..server_cfg() },
        },
    )
    .unwrap();
    // Fill all three shards, then drain shard 1.
    let ids: Vec<_> = (0..3).map(|_| r.create_session(0).unwrap()).collect();
    assert_eq!(r.placement_of(ids[1]), Some(1));
    let x = vec![0.25f32; hidden];
    let rx = r.submit_step(ids[1], &x).unwrap();
    let report = r.drain_shard(1);
    assert!(report.is_quiesced());
    assert!(rx.recv().unwrap().is_ok(), "queued step survived the drain");
    // New sessions skip the draining shard; the others keep balancing.
    let placements: Vec<_> =
        (0..4).map(|_| r.placement_of(r.create_session(0).unwrap()).unwrap()).collect();
    assert!(placements.iter().all(|&p| p != 1), "draining shard got {placements:?}");
    assert_eq!(placements.iter().filter(|&&p| p == 0).count(), 2);
    assert_eq!(placements.iter().filter(|&&p| p == 2).count(), 2);
    // Its resident closes; the shard is then empty and can come back.
    r.close_session(ids[1]).unwrap();
    assert!(r.drain_shard(1).is_empty());
    r.cancel_drain(1);
    let back = r.create_session(0).unwrap();
    assert_eq!(r.placement_of(back), Some(1), "recommissioned shard is least-loaded");
    // Sanity: a bad tenant still errors through the router.
    assert!(matches!(r.create_session(TENANTS + 1), Err(RouterError::Serve(_))));
}
