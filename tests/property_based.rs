//! Property-based tests over the core invariants.
//!
//! The seed expressed these with `proptest`; that crate is unavailable in
//! this offline environment (see `crates/shims/README.md`), so the same
//! properties run through a small hand-rolled harness: each property draws
//! its inputs from a seeded [`Xorshift`] stream, so runs are deterministic
//! and a failing case is reproducible from the printed case index.

use pl_kernels::gemm::reference_gemm;
use pl_kernels::{Gemm, GemmShape, GemmTuning};
use pl_runtime::ThreadPool;
use pl_tensor::{Bf16, BlockedMatrix, Element, Xorshift};

/// Draws a value in `lo..hi` from the stream.
fn draw(rng: &mut Xorshift, lo: usize, hi: usize) -> usize {
    lo + (rng.next_u64() as usize) % (hi - lo)
}

fn block_of(dim: usize) -> usize {
    for c in [16, 8, 4, 2, 1] {
        if dim.is_multiple_of(c) {
            return c;
        }
    }
    1
}

/// Any parallel spec over any (divisible) shape equals the reference.
#[test]
fn gemm_matches_reference() {
    let mut rng = Xorshift::new(0x9e3779b97f4a7c15);
    let specs = ["aBC", "BCa", "Bca", "cBa", "aCB"];
    let pool = ThreadPool::new(2);
    for case in 0..24 {
        let (bm, bn, bk) = (8usize, 8usize, 8usize);
        let (mb, nb, kb) = (draw(&mut rng, 1, 4), draw(&mut rng, 1, 4), draw(&mut rng, 1, 5));
        let (m, n, k) = (mb * bm, nb * bn, kb * bk);
        let spec = specs[draw(&mut rng, 0, specs.len())];
        let seed = rng.next_u64() % 1000;
        let sh = GemmShape { m, n, k, bm, bn, bk };
        let mut data_rng = Xorshift::new(seed);
        let mut a_cm = vec![0.0f32; m * k];
        let mut b_cm = vec![0.0f32; k * n];
        pl_tensor::fill_uniform(&mut a_cm, &mut data_rng, -1.0, 1.0);
        pl_tensor::fill_uniform(&mut b_cm, &mut data_rng, -1.0, 1.0);
        let mut a = BlockedMatrix::<f32>::a_layout(m, k, bm, bk).unwrap();
        a.pack_from_colmajor(&a_cm);
        let mut b = BlockedMatrix::<f32>::b_layout(k, n, bk, bn).unwrap();
        b.pack_from_colmajor(&b_cm);
        let gemm = Gemm::<f32, f32, f32>::new(sh, GemmTuning::simple(spec)).unwrap();
        let mut c = BlockedMatrix::<f32>::c_layout(m, n, bm, bn).unwrap();
        gemm.execute(&a, &b, &mut c, &pool).unwrap();
        let want = reference_gemm(&a_cm, &b_cm, m, n, k);
        let got = c.unpack_to_colmajor();
        for i in 0..got.len() {
            assert!(
                (got[i] - want[i]).abs() < 1e-3 * k as f32,
                "case {case}: spec {spec} {m}x{n}x{k} idx {i}: {} vs {}",
                got[i],
                want[i]
            );
        }
    }
}

/// Blocked-matrix pack/unpack round-trips for arbitrary shapes.
#[test]
fn blocked_roundtrip() {
    let mut rng = Xorshift::new(0xdeadbeefcafe);
    for case in 0..32 {
        let rows_b = draw(&mut rng, 1, 6);
        let cols_b = draw(&mut rng, 1, 6);
        let br = block_of(rows_b * 4);
        let bc = block_of(cols_b * 4);
        let rows = rows_b * br.max(4);
        let cols = cols_b * bc.max(4);
        let br = block_of(rows);
        let bc = block_of(cols);
        let mut data_rng = Xorshift::new(rng.next_u64() % 500);
        let src: Vec<f32> = (0..rows * cols).map(|_| data_rng.next_f32() - 0.5).collect();
        let mut m = BlockedMatrix::<f32>::a_layout(rows, cols, br, bc).unwrap();
        m.pack_from_colmajor(&src);
        assert_eq!(m.unpack_to_colmajor(), src, "case {case}: {rows}x{cols} b{br}x{bc}");
    }
}

/// BF16 conversion is monotone and bounded by one ULP of 8-bit mantissa.
#[test]
fn bf16_conversion_error_bound() {
    let mut rng = Xorshift::new(0x1234567);
    let mut checked = 0usize;
    while checked < 256 {
        let bits = rng.next_u64() as u32;
        let v = f32::from_bits(bits);
        if !(v.is_finite() && v.abs() > 1e-30 && v.abs() < 1e30) {
            continue;
        }
        checked += 1;
        let r = Bf16::from_f32(v).to_f32();
        assert!(((r - v) / v).abs() <= 2.0f32.powi(-8), "bits {bits:#x}: {v} -> {r}");
    }
}

/// Softmax over random columns is a probability distribution.
#[test]
fn softmax_is_distribution() {
    let mut rng = Xorshift::new(0xf00dfeed);
    for case in 0..32 {
        let n = draw(&mut rng, 1, 32);
        let mut data_rng = Xorshift::new(rng.next_u64() % 500);
        let x: Vec<f32> = (0..n).map(|_| (data_rng.next_f32() - 0.5) * 20.0).collect();
        let mut y = vec![0.0f32; n];
        pl_tpp::softmax::softmax_cols(n, 1, &x, n, &mut y, n);
        let s: f32 = y.iter().sum();
        assert!((s - 1.0).abs() < 1e-4, "case {case}: sum {s}");
        assert!(y.iter().all(|&v| (0.0..=1.0).contains(&v)), "case {case}");
    }
}

/// Any spec string the generator emits parses and builds a plan.
#[test]
fn generated_specs_always_compile() {
    let mut rng = Xorshift::new(0xabcdef);
    for case in 0..24 {
        let c = pl_autotuner::Constraints {
            max_blockings: vec![draw(&mut rng, 0, 2), draw(&mut rng, 0, 3), 1],
            parallel_loops: vec![1, 2],
            max_candidates: draw(&mut rng, 5, 60),
        };
        let specs = pl_autotuner::generate(3, &c);
        assert!(!specs.is_empty(), "case {case}");
        for s in &specs {
            parlooper::spec::parse(s, 3).unwrap_or_else(|e| panic!("case {case}: {s}: {e:?}"));
        }
    }
}

/// The schedule simulation covers the iteration space exactly once for
/// worksharing specs, for any thread count.
#[test]
fn simulation_partition_is_exact() {
    let mut rng = Xorshift::new(0x5eed);
    for case in 0..24 {
        let threads = draw(&mut rng, 1, 6);
        let trips = draw(&mut rng, 1, 8);
        let specs = vec![
            parlooper::LoopSpecs::new(0, trips * 2, 1),
            parlooper::LoopSpecs::new(0, trips * 3, 1),
        ];
        let tl = parlooper::ThreadedLoop::new(&specs, "AB").unwrap();
        let sim = tl.simulate(threads);
        let mut all: Vec<Vec<usize>> = sim.into_iter().flatten().collect();
        all.sort();
        all.dedup();
        assert_eq!(
            all.len(),
            trips * 2 * trips * 3,
            "case {case}: threads {threads} trips {trips}"
        );
    }
}

#[test]
fn bf16_element_trait_consistency() {
    for i in 0..1000u32 {
        let v = (i as f32 - 500.0) * 0.37;
        assert_eq!(Bf16::from_f32(v).to_f32(), Bf16::from_f32_rne(v).to_f32_exact());
    }
}

/// Random alloc / append / pin / drop / snapshot sequences over a bounded
/// KV page pool hold the allocator's invariants: the pool's `allocated`
/// count always equals the number of distinct live pages (no leak, no
/// double-free), every sequence reads back exactly what was appended,
/// pinned page handles are never mutated through another writer (COW
/// isolation), and exhaustion only fires at the residency bound.
#[test]
fn kv_page_pool_refcount_discipline() {
    use pl_dnn::{KvPage, KvPagePool, KvSeq, KvSnapshot};
    use std::collections::HashSet;
    use std::sync::Arc;

    let mut rng = Xorshift::new(0xbadc0ffee);
    let mut cow_seen = 0u64;
    for case in 0..16 {
        let hidden = [3usize, 4, 7][draw(&mut rng, 0, 3)];
        let page_tokens = [1usize, 2, 3, 4][draw(&mut rng, 0, 4)];
        let max_pages = draw(&mut rng, 6, 40);
        let pool = KvPagePool::bounded(hidden, page_tokens, max_pages);

        // Model: per-sequence mirrors of every appended K/V row, plus
        // pinned page handles with the contents frozen at pin time.
        let mut seqs: Vec<KvSeq> = Vec::new();
        let mut mirror: Vec<Vec<(Vec<f32>, Vec<f32>)>> = Vec::new();
        let mut pinned: Vec<(Arc<KvPage>, Vec<f32>, Vec<f32>)> = Vec::new();

        for op in 0..240 {
            match draw(&mut rng, 0, 100) {
                // Append a token to a random (possibly new) sequence.
                0..=54 => {
                    let i = draw(&mut rng, 0, seqs.len() + 1);
                    if i == seqs.len() {
                        seqs.push(KvSeq::new(&pool));
                        mirror.push(Vec::new());
                    }
                    let mut k = vec![0.0f32; hidden];
                    let mut v = vec![0.0f32; hidden];
                    pl_tensor::fill_uniform(&mut k, &mut rng, -1.0, 1.0);
                    pl_tensor::fill_uniform(&mut v, &mut rng, -1.0, 1.0);
                    match seqs[i].append(&pool, &k, &v) {
                        Ok(()) => mirror[i].push((k, v)),
                        Err(e) => {
                            // Exhaustion is only legal exactly at the bound
                            // with nothing left on the free list.
                            assert_eq!(e.max_pages, max_pages, "case {case} op {op}");
                            assert_eq!(pool.free_pages(), 0, "case {case} op {op}");
                            assert_eq!(
                                pool.allocated_pages(),
                                max_pages,
                                "case {case} op {op}: exhausted below the bound"
                            );
                            if !seqs.is_empty() {
                                let victim = draw(&mut rng, 0, seqs.len());
                                seqs.remove(victim);
                                mirror.remove(victim);
                            }
                        }
                    }
                }
                // Pin a page handle (an external sharer): later writes to
                // that page must COW-split away from the pin.
                55..=69 => {
                    if let Some(i) = (!seqs.is_empty()).then(|| draw(&mut rng, 0, seqs.len())) {
                        if seqs[i].page_count() > 0 {
                            // Bias toward the tail page so subsequent
                            // appends actually hit the COW path.
                            let p = seqs[i].page_count() - 1;
                            let page = Arc::clone(&seqs[i].pages()[p]);
                            let (k, v) = (page.k().to_vec(), page.v().to_vec());
                            pinned.push((page, k, v));
                        }
                    }
                }
                // Drop a whole sequence (frees every unshared page).
                70..=79 => {
                    if !seqs.is_empty() {
                        let i = draw(&mut rng, 0, seqs.len());
                        seqs.remove(i);
                        mirror.remove(i);
                    }
                }
                // Unpin a held handle.
                80..=89 => {
                    if !pinned.is_empty() {
                        let i = draw(&mut rng, 0, pinned.len());
                        pinned.remove(i);
                    }
                }
                // Snapshot round-trip: dense bytes encode/decode, restore
                // into the pool, verify, drop the restored pages.
                _ => {
                    if let Some(i) = (!seqs.is_empty()).then(|| draw(&mut rng, 0, seqs.len())) {
                        let snap = KvSnapshot::from_seqs(
                            std::slice::from_ref(&seqs[i]),
                            mirror[i].len().max(1),
                        );
                        let bytes = snap.to_bytes();
                        let back = KvSnapshot::from_bytes(&bytes)
                            .unwrap_or_else(|| panic!("case {case} op {op}: decode failed"));
                        assert_eq!(back, snap, "case {case} op {op}: bytes round-trip");
                        if let Ok(restored) = snap.restore(&pool) {
                            let seq = &restored[0];
                            for (t, (k, v)) in mirror[i].iter().enumerate() {
                                assert_eq!(seq.k_tok(t), &k[..], "case {case} op {op} tok {t}");
                                assert_eq!(seq.v_tok(t), &v[..], "case {case} op {op} tok {t}");
                            }
                        }
                    }
                }
            }

            // Invariant 1: the pool's allocated count equals the number of
            // distinct physical pages reachable from sequences and pins —
            // a leak inflates the left side, a double-free deflates it.
            let mut live: HashSet<*const KvPage> = HashSet::new();
            for s in &seqs {
                for p in s.pages() {
                    live.insert(Arc::as_ptr(p));
                }
            }
            for (p, _, _) in &pinned {
                live.insert(Arc::as_ptr(p));
            }
            assert_eq!(
                pool.allocated_pages(),
                live.len(),
                "case {case} op {op}: pool accounting diverged from live set"
            );
            assert!(
                pool.allocated_pages() + pool.free_pages() <= max_pages,
                "case {case} op {op}: residency exceeded the bound"
            );

            // Invariant 2: every sequence reads back its own history.
            for (i, s) in seqs.iter().enumerate() {
                assert_eq!(s.len(), mirror[i].len(), "case {case} op {op} seq {i}");
                for (t, (k, v)) in mirror[i].iter().enumerate() {
                    assert_eq!(s.k_tok(t), &k[..], "case {case} op {op} seq {i} tok {t}");
                    assert_eq!(s.v_tok(t), &v[..], "case {case} op {op} seq {i} tok {t}");
                }
            }

            // Invariant 3: pinned handles still hold their frozen contents
            // — any writer that touched a shared page must have split off
            // a private copy first.
            for (j, (p, k, v)) in pinned.iter().enumerate() {
                assert_eq!(p.k(), &k[..], "case {case} op {op} pin {j}: K mutated under pin");
                assert_eq!(p.v(), &v[..], "case {case} op {op} pin {j}: V mutated under pin");
            }
        }

        cow_seen += pool.cow_splits();
        drop(seqs);
        drop(pinned);
        assert_eq!(pool.allocated_pages(), 0, "case {case}: pages leaked at teardown");
        assert_eq!(
            pool.resident_pages(),
            pool.free_pages(),
            "case {case}: teardown left pages outside the free list"
        );
    }
    assert!(cow_seen > 0, "the op mix never exercised a COW split");
}
