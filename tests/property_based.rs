//! Property-based tests (proptest) over the core invariants.

use pl_kernels::gemm::reference_gemm;
use pl_kernels::{Gemm, GemmShape, GemmTuning};
use pl_runtime::ThreadPool;
use pl_tensor::{Bf16, BlockedMatrix, Element, Xorshift};
use proptest::prelude::*;

fn block_of(dim: usize) -> usize {
    for c in [16, 8, 4, 2, 1] {
        if dim % c == 0 {
            return c;
        }
    }
    1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any parallel spec over any (divisible) shape equals the reference.
    #[test]
    fn gemm_matches_reference(
        mb in 1usize..4,
        nb in 1usize..4,
        kb in 1usize..5,
        spec_idx in 0usize..5,
        seed in 0u64..1000,
    ) {
        let (bm, bn, bk) = (8usize, 8usize, 8usize);
        let (m, n, k) = (mb * bm, nb * bn, kb * bk);
        let specs = ["aBC", "BCa", "Bca", "cBa", "aCB"];
        let pool = ThreadPool::new(2);
        let sh = GemmShape { m, n, k, bm, bn, bk };
        let mut rng = Xorshift::new(seed);
        let mut a_cm = vec![0.0f32; m * k];
        let mut b_cm = vec![0.0f32; k * n];
        pl_tensor::fill_uniform(&mut a_cm, &mut rng, -1.0, 1.0);
        pl_tensor::fill_uniform(&mut b_cm, &mut rng, -1.0, 1.0);
        let mut a = BlockedMatrix::<f32>::a_layout(m, k, bm, bk).unwrap();
        a.pack_from_colmajor(&a_cm);
        let mut b = BlockedMatrix::<f32>::b_layout(k, n, bk, bn).unwrap();
        b.pack_from_colmajor(&b_cm);
        let gemm = Gemm::<f32, f32, f32>::new(sh, GemmTuning::simple(specs[spec_idx])).unwrap();
        let mut c = BlockedMatrix::<f32>::c_layout(m, n, bm, bn).unwrap();
        gemm.execute(&a, &b, &mut c, &pool).unwrap();
        let want = reference_gemm(&a_cm, &b_cm, m, n, k);
        let got = c.unpack_to_colmajor();
        for i in 0..got.len() {
            prop_assert!((got[i] - want[i]).abs() < 1e-3 * k as f32);
        }
    }

    /// Blocked-matrix pack/unpack round-trips for arbitrary shapes.
    #[test]
    fn blocked_roundtrip(rows_b in 1usize..6, cols_b in 1usize..6, seed in 0u64..500) {
        let br = block_of(rows_b * 4);
        let bc = block_of(cols_b * 4);
        let rows = rows_b * br.max(4);
        let cols = cols_b * bc.max(4);
        let br = block_of(rows);
        let bc = block_of(cols);
        let mut rng = Xorshift::new(seed);
        let src: Vec<f32> = (0..rows * cols).map(|_| rng.next_f32() - 0.5).collect();
        let mut m = BlockedMatrix::<f32>::a_layout(rows, cols, br, bc).unwrap();
        m.pack_from_colmajor(&src);
        prop_assert_eq!(m.unpack_to_colmajor(), src);
    }

    /// BF16 conversion is monotone and bounded by one ULP of 8-bit mantissa.
    #[test]
    fn bf16_conversion_error_bound(bits in any::<u32>()) {
        let v = f32::from_bits(bits);
        prop_assume!(v.is_finite() && v.abs() > 1e-30 && v.abs() < 1e30);
        let r = Bf16::from_f32(v).to_f32();
        prop_assert!(((r - v) / v).abs() <= 2.0f32.powi(-8));
    }

    /// Softmax over random columns is a probability distribution.
    #[test]
    fn softmax_is_distribution(n in 1usize..32, seed in 0u64..500) {
        let mut rng = Xorshift::new(seed);
        let x: Vec<f32> = (0..n).map(|_| (rng.next_f32() - 0.5) * 20.0).collect();
        let mut y = vec![0.0f32; n];
        pl_tpp::softmax::softmax_cols(n, 1, &x, n, &mut y, n);
        let s: f32 = y.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-4);
        prop_assert!(y.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// Any spec string the generator emits parses and builds a plan.
    #[test]
    fn generated_specs_always_compile(max_a in 0usize..2, max_b in 0usize..3, cap in 5usize..60) {
        let c = pl_autotuner::Constraints {
            max_blockings: vec![max_a, max_b, 1],
            parallel_loops: vec![1, 2],
            max_candidates: cap,
        };
        let specs = pl_autotuner::generate(3, &c);
        prop_assert!(!specs.is_empty());
        for s in &specs {
            parlooper::spec::parse(s, 3).unwrap();
        }
    }

    /// The schedule simulation covers the iteration space exactly once for
    /// worksharing specs, for any thread count.
    #[test]
    fn simulation_partition_is_exact(threads in 1usize..6, trips in 1usize..8) {
        let specs = vec![
            parlooper::LoopSpecs::new(0, trips * 2, 1),
            parlooper::LoopSpecs::new(0, trips * 3, 1),
        ];
        let tl = parlooper::ThreadedLoop::new(&specs, "AB").unwrap();
        let sim = tl.simulate(threads);
        let mut all: Vec<Vec<usize>> = sim.into_iter().flatten().collect();
        all.sort();
        all.dedup();
        prop_assert_eq!(all.len(), trips * 2 * trips * 3);
    }
}

#[test]
fn bf16_element_trait_consistency() {
    for i in 0..1000u32 {
        let v = (i as f32 - 500.0) * 0.37;
        assert_eq!(Bf16::from_f32(v).to_f32(), Bf16::from_f32_rne(v).to_f32_exact());
    }
}
