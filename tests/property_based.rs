//! Property-based tests over the core invariants.
//!
//! The seed expressed these with `proptest`; that crate is unavailable in
//! this offline environment (see `crates/shims/README.md`), so the same
//! properties run through a small hand-rolled harness: each property draws
//! its inputs from a seeded [`Xorshift`] stream, so runs are deterministic
//! and a failing case is reproducible from the printed case index.

use pl_kernels::gemm::reference_gemm;
use pl_kernels::{Gemm, GemmShape, GemmTuning};
use pl_runtime::ThreadPool;
use pl_tensor::{Bf16, BlockedMatrix, Element, Xorshift};

/// Draws a value in `lo..hi` from the stream.
fn draw(rng: &mut Xorshift, lo: usize, hi: usize) -> usize {
    lo + (rng.next_u64() as usize) % (hi - lo)
}

fn block_of(dim: usize) -> usize {
    for c in [16, 8, 4, 2, 1] {
        if dim.is_multiple_of(c) {
            return c;
        }
    }
    1
}

/// Any parallel spec over any (divisible) shape equals the reference.
#[test]
fn gemm_matches_reference() {
    let mut rng = Xorshift::new(0x9e3779b97f4a7c15);
    let specs = ["aBC", "BCa", "Bca", "cBa", "aCB"];
    let pool = ThreadPool::new(2);
    for case in 0..24 {
        let (bm, bn, bk) = (8usize, 8usize, 8usize);
        let (mb, nb, kb) = (draw(&mut rng, 1, 4), draw(&mut rng, 1, 4), draw(&mut rng, 1, 5));
        let (m, n, k) = (mb * bm, nb * bn, kb * bk);
        let spec = specs[draw(&mut rng, 0, specs.len())];
        let seed = rng.next_u64() % 1000;
        let sh = GemmShape { m, n, k, bm, bn, bk };
        let mut data_rng = Xorshift::new(seed);
        let mut a_cm = vec![0.0f32; m * k];
        let mut b_cm = vec![0.0f32; k * n];
        pl_tensor::fill_uniform(&mut a_cm, &mut data_rng, -1.0, 1.0);
        pl_tensor::fill_uniform(&mut b_cm, &mut data_rng, -1.0, 1.0);
        let mut a = BlockedMatrix::<f32>::a_layout(m, k, bm, bk).unwrap();
        a.pack_from_colmajor(&a_cm);
        let mut b = BlockedMatrix::<f32>::b_layout(k, n, bk, bn).unwrap();
        b.pack_from_colmajor(&b_cm);
        let gemm = Gemm::<f32, f32, f32>::new(sh, GemmTuning::simple(spec)).unwrap();
        let mut c = BlockedMatrix::<f32>::c_layout(m, n, bm, bn).unwrap();
        gemm.execute(&a, &b, &mut c, &pool).unwrap();
        let want = reference_gemm(&a_cm, &b_cm, m, n, k);
        let got = c.unpack_to_colmajor();
        for i in 0..got.len() {
            assert!(
                (got[i] - want[i]).abs() < 1e-3 * k as f32,
                "case {case}: spec {spec} {m}x{n}x{k} idx {i}: {} vs {}",
                got[i],
                want[i]
            );
        }
    }
}

/// Blocked-matrix pack/unpack round-trips for arbitrary shapes.
#[test]
fn blocked_roundtrip() {
    let mut rng = Xorshift::new(0xdeadbeefcafe);
    for case in 0..32 {
        let rows_b = draw(&mut rng, 1, 6);
        let cols_b = draw(&mut rng, 1, 6);
        let br = block_of(rows_b * 4);
        let bc = block_of(cols_b * 4);
        let rows = rows_b * br.max(4);
        let cols = cols_b * bc.max(4);
        let br = block_of(rows);
        let bc = block_of(cols);
        let mut data_rng = Xorshift::new(rng.next_u64() % 500);
        let src: Vec<f32> = (0..rows * cols).map(|_| data_rng.next_f32() - 0.5).collect();
        let mut m = BlockedMatrix::<f32>::a_layout(rows, cols, br, bc).unwrap();
        m.pack_from_colmajor(&src);
        assert_eq!(m.unpack_to_colmajor(), src, "case {case}: {rows}x{cols} b{br}x{bc}");
    }
}

/// BF16 conversion is monotone and bounded by one ULP of 8-bit mantissa.
#[test]
fn bf16_conversion_error_bound() {
    let mut rng = Xorshift::new(0x1234567);
    let mut checked = 0usize;
    while checked < 256 {
        let bits = rng.next_u64() as u32;
        let v = f32::from_bits(bits);
        if !(v.is_finite() && v.abs() > 1e-30 && v.abs() < 1e30) {
            continue;
        }
        checked += 1;
        let r = Bf16::from_f32(v).to_f32();
        assert!(((r - v) / v).abs() <= 2.0f32.powi(-8), "bits {bits:#x}: {v} -> {r}");
    }
}

/// Softmax over random columns is a probability distribution.
#[test]
fn softmax_is_distribution() {
    let mut rng = Xorshift::new(0xf00dfeed);
    for case in 0..32 {
        let n = draw(&mut rng, 1, 32);
        let mut data_rng = Xorshift::new(rng.next_u64() % 500);
        let x: Vec<f32> = (0..n).map(|_| (data_rng.next_f32() - 0.5) * 20.0).collect();
        let mut y = vec![0.0f32; n];
        pl_tpp::softmax::softmax_cols(n, 1, &x, n, &mut y, n);
        let s: f32 = y.iter().sum();
        assert!((s - 1.0).abs() < 1e-4, "case {case}: sum {s}");
        assert!(y.iter().all(|&v| (0.0..=1.0).contains(&v)), "case {case}");
    }
}

/// Any spec string the generator emits parses and builds a plan.
#[test]
fn generated_specs_always_compile() {
    let mut rng = Xorshift::new(0xabcdef);
    for case in 0..24 {
        let c = pl_autotuner::Constraints {
            max_blockings: vec![draw(&mut rng, 0, 2), draw(&mut rng, 0, 3), 1],
            parallel_loops: vec![1, 2],
            max_candidates: draw(&mut rng, 5, 60),
        };
        let specs = pl_autotuner::generate(3, &c);
        assert!(!specs.is_empty(), "case {case}");
        for s in &specs {
            parlooper::spec::parse(s, 3).unwrap_or_else(|e| panic!("case {case}: {s}: {e:?}"));
        }
    }
}

/// The schedule simulation covers the iteration space exactly once for
/// worksharing specs, for any thread count.
#[test]
fn simulation_partition_is_exact() {
    let mut rng = Xorshift::new(0x5eed);
    for case in 0..24 {
        let threads = draw(&mut rng, 1, 6);
        let trips = draw(&mut rng, 1, 8);
        let specs = vec![
            parlooper::LoopSpecs::new(0, trips * 2, 1),
            parlooper::LoopSpecs::new(0, trips * 3, 1),
        ];
        let tl = parlooper::ThreadedLoop::new(&specs, "AB").unwrap();
        let sim = tl.simulate(threads);
        let mut all: Vec<Vec<usize>> = sim.into_iter().flatten().collect();
        all.sort();
        all.dedup();
        assert_eq!(
            all.len(),
            trips * 2 * trips * 3,
            "case {case}: threads {threads} trips {trips}"
        );
    }
}

#[test]
fn bf16_element_trait_consistency() {
    for i in 0..1000u32 {
        let v = (i as f32 - 500.0) * 0.37;
        assert_eq!(Bf16::from_f32(v).to_f32(), Bf16::from_f32_rne(v).to_f32_exact());
    }
}
