//! The prepared-op packing discipline, asserted through the
//! `pl_dnn::prepared::pack_events` counter: after a model is constructed
//! (its plans built, weights packed into their blocked kernel layouts),
//! the decode/forward hot paths must pack **zero** weight bytes — only
//! activations are gathered and blocked.
//!
//! Each test records the counter after construction and asserts an exact
//! delta of zero across the steady-state path it drives. The counter is
//! process-wide, so every test in this binary serializes on one mutex —
//! concurrent sibling tests building plans of their own would otherwise
//! make exact-delta assertions meaningless (which is why these live here
//! and not in the `pl_dnn` unit tests).

use pl_dnn::matmul::{matmul, Trans};
use pl_dnn::prepared::pack_events;
use pl_dnn::resnet::FcHead;
use pl_dnn::{Decoder, DecoderConfig, DecoderModel, Precision};
use pl_runtime::ThreadPool;
use pl_tensor::{fill_uniform, Xorshift};
use std::sync::{Arc, Mutex};

static SERIAL: Mutex<()> = Mutex::new(());

fn token(hidden: usize, seed: u64) -> Vec<f32> {
    let mut x = vec![0.0f32; hidden];
    fill_uniform(&mut x, &mut Xorshift::new(seed), -0.5, 0.5);
    x
}

#[test]
fn decoder_step_paths_pack_no_weight_bytes() {
    let _guard = SERIAL.lock().unwrap();
    let pool = ThreadPool::new(4);
    let cfg = DecoderConfig::scaled_for_tests();
    let model = Arc::new(DecoderModel::new(cfg, 9));
    let h = cfg.hidden;

    // Construction is where the packs happen — exactly one event per
    // weight plan (6 per layer, no transposes).
    let after_build = pack_events();

    // Prefill + serial decode through the single-stream wrapper.
    let mut d = Decoder::from_model(Arc::clone(&model), 32);
    let mut prompt = vec![0.0f32; h * 4];
    fill_uniform(&mut prompt, &mut Xorshift::new(10), -0.5, 0.5);
    let y = d.prefill(&prompt, 4, &pool);
    let mut x = y[y.len() - h..].to_vec();
    for _ in 0..4 {
        x = d.step(&x, &pool);
    }

    // Serial batched decode.
    let mut states: Vec<_> = (0..3).map(|_| model.new_state(16)).collect();
    let tokens: Vec<Vec<f32>> = (0..3).map(|s| token(h, 20 + s)).collect();
    let batch: Vec<(&mut pl_dnn::DecoderState, &[f32])> =
        states.iter_mut().zip(&tokens).map(|(st, x)| (st, x.as_slice())).collect();
    let _ = model.step_batch(batch, &pool);

    // Fused batched decode.
    let batch: Vec<(&mut pl_dnn::DecoderState, &[f32])> =
        states.iter_mut().zip(&tokens).map(|(st, x)| (st, x.as_slice())).collect();
    let _ = model.step_batch_fused(batch, &pool);

    // Warming is kernel construction, never packing.
    model.warm_plans(&[1, 3, 8]);

    assert_eq!(
        pack_events(),
        after_build,
        "decode paths packed weight bytes after model construction"
    );
}

#[test]
fn int8_decoder_quantizes_and_packs_weights_only_at_construction() {
    let _guard = SERIAL.lock().unwrap();
    let pool = ThreadPool::new(4);
    let cfg = DecoderConfig::scaled_for_tests();
    let model = Arc::new(DecoderModel::new_with_precision(cfg, 9, Precision::Int8));
    let h = cfg.hidden;

    // The quantized pack (VNNI blocking + per-row scales) is part of plan
    // construction — one pack event per weight plan, same as f32. From
    // here on the decode paths may quantize *activations* every step, but
    // weight bytes must never be touched again: no re-pack, no
    // re-quantization.
    let after_build = pack_events();

    // Prefill + serial decode.
    let mut d = Decoder::from_model(Arc::clone(&model), 32);
    let mut prompt = vec![0.0f32; h * 4];
    fill_uniform(&mut prompt, &mut Xorshift::new(10), -0.5, 0.5);
    let y = d.prefill(&prompt, 4, &pool);
    let mut x = y[y.len() - h..].to_vec();
    for _ in 0..4 {
        x = d.step(&x, &pool);
    }

    // Serial then fused batched decode over the same sessions.
    let mut states: Vec<_> = (0..3).map(|_| model.new_state(16)).collect();
    let tokens: Vec<Vec<f32>> = (0..3).map(|s| token(h, 20 + s)).collect();
    let batch: Vec<(&mut pl_dnn::DecoderState, &[f32])> =
        states.iter_mut().zip(&tokens).map(|(st, x)| (st, x.as_slice())).collect();
    let _ = model.step_batch(batch, &pool);
    let batch: Vec<(&mut pl_dnn::DecoderState, &[f32])> =
        states.iter_mut().zip(&tokens).map(|(st, x)| (st, x.as_slice())).collect();
    let _ = model.step_batch_fused(batch, &pool);

    model.warm_plans(&[1, 3, 8]);

    assert_eq!(
        pack_events(),
        after_build,
        "int8 decode paths packed or re-quantized weight bytes after model construction"
    );
}

#[test]
fn fc_head_forward_packs_no_weight_bytes() {
    let _guard = SERIAL.lock().unwrap();
    let pool = ThreadPool::new(2);
    let head = FcHead::new(64, 10, 3);
    let after_build = pack_events();
    let mut feats = vec![0.0f32; 64 * 8];
    fill_uniform(&mut feats, &mut Xorshift::new(30), -0.5, 0.5);
    let _ = head.forward(&feats, 8, &pool);
    let _ = head.forward(&feats, 8, &pool);
    assert_eq!(pack_events(), after_build, "FcHead forward packed weight bytes");
}

#[test]
fn compat_matmul_is_pack_per_call() {
    let _guard = SERIAL.lock().unwrap();
    let pool = ThreadPool::new(2);
    let (m, n, k) = (16, 4, 16);
    let a = token(m * k, 40);
    let b = token(k * n, 41);
    // The compatibility wrapper builds a throwaway plan per call: one
    // pack event for a no-transpose A, two when A needs a transpose.
    let before = pack_events();
    let _ = matmul(&a, Trans::No, &b, Trans::No, m, n, k, &pool);
    assert_eq!(pack_events(), before + 1, "no-transpose matmul is one pack per call");
    let at = pl_dnn::matmul::transpose_cm(&a, m, k);
    let _ = matmul(&at, Trans::Yes, &b, Trans::No, m, n, k, &pool);
    assert_eq!(pack_events(), before + 3, "transposed matmul pays pack + transpose");
}
