//! Integration of the auto-tuner with the performance model and the real
//! kernels (the Fig. 1 / Fig. 6 workflow).

use pl_autotuner::{blocks_for_spec, tune_gemm_modeled, Constraints, GemmProblem};
use pl_kernels::{Gemm, GemmShape, GemmTuning};
use pl_perfmodel::{GemmModelSpec, Platform};
use pl_runtime::ThreadPool;
use pl_tensor::{fill_uniform, BlockedMatrix, DType, Xorshift};

#[test]
fn modeled_winner_beats_pathological_schedule_when_measured() {
    let pool = ThreadPool::new(2);
    let (m, n, k) = (128usize, 128usize, 128usize);
    let shape = GemmShape { m, n, k, bm: 32, bn: 32, bk: 32 };
    let problem = GemmProblem { m, n, k, bm: 32, bn: 32, bk: 32, dtype: DType::F32 };
    let host = Platform::generic_host(2);
    let tuned = tune_gemm_modeled(&problem, &Constraints::gemm(0, 1, 1, 100), &host, 2);
    assert!(!tuned.evaluated.is_empty());

    // Measure the modeled winner vs a sequential (replicated) schedule.
    let mut rng = Xorshift::new(2);
    let mut a_cm = vec![0.0f32; m * k];
    let mut b_cm = vec![0.0f32; k * n];
    fill_uniform(&mut a_cm, &mut rng, -0.5, 0.5);
    fill_uniform(&mut b_cm, &mut rng, -0.5, 0.5);
    let mut a = BlockedMatrix::<f32>::a_layout(m, k, 32, 32).unwrap();
    a.pack_from_colmajor(&a_cm);
    let mut b = BlockedMatrix::<f32>::b_layout(k, n, 32, 32).unwrap();
    b.pack_from_colmajor(&b_cm);

    let time_spec = |tuning: GemmTuning, pool: &ThreadPool| -> f64 {
        let kernel = Gemm::<f32, f32, f32>::new(shape, tuning).unwrap();
        let mut c = BlockedMatrix::<f32>::c_layout(m, n, 32, 32).unwrap();
        kernel.execute(&a, &b, &mut c, pool).unwrap();
        let t0 = std::time::Instant::now();
        for _ in 0..3 {
            kernel.execute(&a, &b, &mut c, pool).unwrap();
        }
        t0.elapsed().as_secs_f64()
    };

    let blocks = blocks_for_spec(&problem, &tuned.best.spec).unwrap();
    let best_time = time_spec(
        GemmTuning {
            spec: tuned.best.spec.clone(),
            k_step: 1,
            a_blocks: blocks[0].clone(),
            b_blocks: blocks[1].clone(),
            c_blocks: blocks[2].clone(),
        },
        &pool,
    );
    // Pathological: fully sequential on a 2-thread pool (replicated work).
    let seq_pool = ThreadPool::new(2);
    let seq_time = time_spec(GemmTuning::simple("abc"), &seq_pool);
    assert!(best_time < seq_time, "tuned {best_time}s not faster than sequential {seq_time}s");
}

#[test]
fn model_scores_parallel_above_replicated() {
    let host = Platform::generic_host(4);
    let mk = |spec: &str| GemmModelSpec {
        m: 256,
        n: 256,
        k: 256,
        bm: 32,
        bn: 32,
        bk: 32,
        k_step: 1,
        spec: spec.into(),
        blocks: [vec![], vec![], vec![]],
        dtype: DType::F32,
    };
    let par = mk("BCa").predict(&host, 4).unwrap().gflops;
    let seq = mk("bca").predict(&host, 4).unwrap().gflops;
    assert!(par > 2.0 * seq, "par {par} seq {seq}");
}

#[test]
fn spec_generation_feeds_real_kernels() {
    // Every generated candidate (with ladder blockings) must construct a
    // valid kernel — the zero-code-change property of §II-D.
    let pool = ThreadPool::new(2);
    let (m, n, k) = (64usize, 64usize, 64usize);
    let shape = GemmShape { m, n, k, bm: 16, bn: 16, bk: 16 };
    let problem = GemmProblem { m, n, k, bm: 16, bn: 16, bk: 16, dtype: DType::F32 };
    let specs = pl_autotuner::generate(3, &Constraints::gemm(1, 1, 1, 60));
    let mut built = 0;
    let a = BlockedMatrix::<f32>::a_layout(m, k, 16, 16).unwrap();
    let b = BlockedMatrix::<f32>::b_layout(k, n, 16, 16).unwrap();
    for spec in specs {
        let Some(blocks) = blocks_for_spec(&problem, &spec) else { continue };
        let tuning = GemmTuning {
            spec: spec.clone(),
            k_step: 1,
            a_blocks: blocks[0].clone(),
            b_blocks: blocks[1].clone(),
            c_blocks: blocks[2].clone(),
        };
        let kernel = Gemm::<f32, f32, f32>::new(shape, tuning)
            .unwrap_or_else(|e| panic!("spec {spec}: {e}"));
        // Sequential specs replicate; only execute parallel ones here.
        if spec.chars().any(|c| c.is_ascii_uppercase()) {
            let mut c = BlockedMatrix::<f32>::c_layout(m, n, 16, 16).unwrap();
            kernel.execute(&a, &b, &mut c, &pool).unwrap();
        }
        built += 1;
    }
    assert!(built > 20, "only {built} candidates built");
}
