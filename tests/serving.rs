//! Integration test of the pl-serve runtime: N concurrent sessions drive
//! prefill + decode steps through the batched server, and every session's
//! outputs must be bit-identical to a sequential, unbatched `Decoder`
//! baseline over the same shared weights.

use pl_dnn::{Decoder, DecoderConfig, DecoderModel};
use pl_runtime::ThreadPool;
use pl_serve::{Server, ServerConfig};
use pl_tensor::{fill_uniform, Xorshift};
use std::sync::Arc;
use std::time::Duration;

const SESSIONS: usize = 6;
const PROMPT: usize = 3;
const STEPS: usize = 8;
const KV: usize = 32;

fn prompt_for(session: usize, hidden: usize) -> Vec<f32> {
    let mut x = vec![0.0f32; hidden * PROMPT];
    fill_uniform(&mut x, &mut Xorshift::new(4000 + session as u64), -0.5, 0.5);
    x
}

/// Feed the last token's transformed state back as the next input — a
/// deterministic stand-in for sampling that exercises the KV-cached loop.
fn last_token(y: &[f32], hidden: usize) -> Vec<f32> {
    y[y.len() - hidden..].to_vec()
}

#[test]
fn concurrent_batched_sessions_match_unbatched_decoder() {
    let cfg = DecoderConfig::scaled_for_tests();
    let hidden = cfg.hidden;
    let model = Arc::new(DecoderModel::new(cfg, 31337));
    let pool = Arc::new(ThreadPool::new(4));
    let mut server = Server::new(
        Arc::clone(&model),
        Arc::clone(&pool),
        ServerConfig {
            tenants: 3,
            max_batch: SESSIONS,
            kv_capacity: KV,
            coalesce_wait: Duration::from_millis(2),
            ..Default::default()
        },
    );
    server.start();

    // N concurrent clients: prefill, then STEPS closed-loop decode steps.
    let mut served: Vec<Vec<Vec<f32>>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for s in 0..SESSIONS {
            let server = &server;
            handles.push(scope.spawn(move || {
                let id = server.create_session(s % 3).expect("admitted");
                let y = server.prefill(id, &prompt_for(s, hidden), PROMPT).unwrap();
                let mut x = last_token(&y, hidden);
                let mut outs = Vec::with_capacity(STEPS);
                for _ in 0..STEPS {
                    let y = server.step(id, &x).unwrap();
                    x = y.clone();
                    outs.push(y);
                }
                assert_eq!(server.close_session(id).unwrap(), STEPS as u64);
                outs
            }));
        }
        for h in handles {
            served.push(h.join().unwrap());
        }
    });

    let snap = server.stats().snapshot();
    server.shutdown();
    assert_eq!(snap.completed, (SESSIONS * STEPS) as u64);
    assert_eq!(snap.prefills, SESSIONS as u64);

    // Sequential unbatched baseline over the same weights.
    for (s, served_session) in served.iter().enumerate() {
        let mut d = Decoder::from_model(Arc::clone(&model), KV);
        let y = d.prefill(&prompt_for(s, hidden), PROMPT, &pool);
        let mut x = last_token(&y, hidden);
        for (t, served_y) in served_session.iter().enumerate() {
            let y = d.step(&x, &pool);
            assert_eq!(&y, served_y, "session {s} step {t} diverged from baseline");
            x = y;
        }
    }
}

use pl_tensor::max_rel_err;

#[test]
fn fused_batched_sessions_match_serial_within_tolerance() {
    // The same multi-tenant multi-step workload as the bit-identity test,
    // but through the fused cross-session path (`ServerConfig::fused`):
    // every session's whole output stream must agree with the sequential
    // unbatched baseline within 1e-5 relative error, and the fused GEMM
    // shapes must be observable in the stats.
    let cfg = DecoderConfig::scaled_for_tests();
    let hidden = cfg.hidden;
    let model = Arc::new(DecoderModel::new(cfg, 90210));
    let pool = Arc::new(ThreadPool::new(4));
    let mut server = Server::new(
        Arc::clone(&model),
        Arc::clone(&pool),
        ServerConfig {
            tenants: 3,
            max_batch: SESSIONS,
            kv_capacity: KV,
            coalesce_wait: Duration::from_millis(2),
            fused: true,
            ..Default::default()
        },
    );
    server.start();

    let mut served: Vec<Vec<Vec<f32>>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for s in 0..SESSIONS {
            let server = &server;
            handles.push(scope.spawn(move || {
                let id = server.create_session(s % 3).expect("admitted");
                let y = server.prefill(id, &prompt_for(s, hidden), PROMPT).unwrap();
                let mut x = last_token(&y, hidden);
                let mut outs = Vec::with_capacity(STEPS);
                for _ in 0..STEPS {
                    let y = server.step(id, &x).unwrap();
                    x = y.clone();
                    outs.push(y);
                }
                assert_eq!(server.close_session(id).unwrap(), STEPS as u64);
                outs
            }));
        }
        for h in handles {
            served.push(h.join().unwrap());
        }
    });

    let snap = server.stats().snapshot();
    server.shutdown();
    assert_eq!(snap.completed, (SESSIONS * STEPS) as u64);
    // Prefills now ride the batcher too, so a batch can be a lone prefill
    // chunk: the fused invariant is that every *decode-bearing* batch ran
    // fused.
    assert_eq!(snap.fused_batches, snap.decode_batches, "every decode batch ran fused");
    assert!(!snap.fused_gemm_shapes.is_empty(), "fused GEMM shapes recorded");
    let cfg = *model.config();
    for &((m, n, k), _) in &snap.fused_gemm_shapes {
        assert!((1..=SESSIONS).contains(&n), "n is a batch size, got {n}");
        assert!(
            (m, k) == (cfg.hidden, cfg.hidden)
                || (m, k) == (cfg.ffn, cfg.hidden)
                || (m, k) == (cfg.hidden, cfg.ffn),
            "unexpected fused shape {m}x{n}x{k}"
        );
    }

    // Sequential unbatched baseline; tolerance, not bit-identity — the
    // fused path reassociates the projections over the batch dimension.
    for (s, served_session) in served.iter().enumerate() {
        let mut d = Decoder::from_model(Arc::clone(&model), KV);
        let y = d.prefill(&prompt_for(s, hidden), PROMPT, &pool);
        let mut x = last_token(&y, hidden);
        for (t, served_y) in served_session.iter().enumerate() {
            let y = d.step(&x, &pool);
            let err = max_rel_err(&y, served_y);
            assert!(err <= 1e-5, "session {s} step {t}: rel err {err}");
            // Continue the baseline from the *served* stream so a single
            // within-tolerance divergence cannot compound across steps.
            x = served_y.clone();
        }
    }
}

#[test]
fn ring_full_backpressure_is_an_error_and_the_session_recovers() {
    // Satellite coverage for the bounded-ring contract: filling a
    // tenant's ring must surface `Backpressure` to the submitter
    // *immediately* (no hang, no silent drop), every previously accepted
    // step must still execute, and after a `pump` drains the ring the
    // same session submits and decodes normally again.
    let cfg = DecoderConfig::scaled_for_tests();
    let hidden = cfg.hidden;
    let model = Arc::new(DecoderModel::new(cfg, 555));
    let pool = Arc::new(ThreadPool::new(2));
    let capacity = 3usize;
    let server = Server::new(
        Arc::clone(&model),
        pool,
        ServerConfig {
            queue_capacity: capacity,
            coalesce_wait: Duration::ZERO,
            kv_capacity: KV,
            ..Default::default()
        },
    );
    let id = server.create_session(0).unwrap();
    let xs: Vec<Vec<f32>> = (0..=capacity)
        .map(|t| {
            let mut x = vec![0.0f32; hidden];
            fill_uniform(&mut x, &mut Xorshift::new(6001 + t as u64), -0.5, 0.5);
            x
        })
        .collect();
    // Fill the ring exactly to capacity, then overflow it.
    let accepted: Vec<_> = (0..capacity).map(|t| server.submit_step(id, &xs[t]).unwrap()).collect();
    for attempt in 0..2 {
        match server.submit_step(id, &xs[capacity]) {
            Err(ServeError::Backpressure { tenant: 0 }) => {}
            other => panic!("overflow attempt {attempt} must bounce, got {other:?}"),
        }
    }
    assert_eq!(server.stats().snapshot().rejected_backpressure, 2);
    // Every accepted step still executes: pipelined steps of one session
    // ride consecutive batches (1 per pump), in submission order.
    for t in 0..capacity {
        assert_eq!(server.pump(), 1, "pump {t} must make progress");
    }
    let outs: Vec<Vec<f32>> = accepted.into_iter().map(|rx| rx.recv().unwrap().unwrap()).collect();
    // The session recovers: the post-backpressure submit is accepted and
    // continues the same KV stream.
    let rx = server.submit_step(id, &xs[capacity]).expect("ring drained, submit accepted");
    assert_eq!(server.pump(), 1);
    let recovered = rx.recv().unwrap().unwrap();
    // Baseline: the same 4-step stream, unbatched.
    let mut st = model.new_state(KV);
    let bpool = ThreadPool::new(2);
    for (t, out) in outs.iter().enumerate() {
        assert_eq!(out, &model.forward(&mut st, &xs[t], 1, &bpool), "step {t}");
    }
    assert_eq!(recovered, model.forward(&mut st, &xs[capacity], 1, &bpool));
    assert_eq!(server.close_session(id).unwrap(), capacity as u64 + 1);
}

use pl_serve::ServeError;

#[test]
fn chunked_prefill_interleaves_with_live_decode_traffic() {
    // The continuous-batching acceptance scenario: a 32-token prompt
    // (8 x prefill_chunk) submitted while B = 8 decode traffic is live
    // must not stall decode — every prefill chunk shares its batch with
    // decode lanes, decode steps complete between the chunks, and the
    // chunked output matches the whole-prompt forward.
    let cfg = DecoderConfig::scaled_for_tests();
    let hidden = cfg.hidden;
    let model = Arc::new(DecoderModel::new(cfg, 20240731));
    let pool = Arc::new(ThreadPool::new(4));
    const DECODERS: usize = 8;
    const CHUNK: usize = 4;
    const PROMPT_TOKENS: usize = 8 * CHUNK; // 8 chunks
    let server = Server::new(
        Arc::clone(&model),
        pool,
        ServerConfig {
            tenants: 2,
            max_batch: DECODERS,
            kv_capacity: 64,
            prefill_chunk: CHUNK,
            coalesce_wait: Duration::ZERO,
            ..Default::default()
        },
    );

    // B = 8 live decode sessions (tenant 0), closed loop.
    let decode_ids: Vec<_> = (0..DECODERS).map(|_| server.create_session(0).unwrap()).collect();
    let mut xs: Vec<Vec<f32>> = (0..DECODERS)
        .map(|s| {
            let mut x = vec![0.0f32; hidden];
            fill_uniform(&mut x, &mut Xorshift::new(8800 + s as u64), -0.5, 0.5);
            x
        })
        .collect();
    let mut rxs: Vec<_> =
        decode_ids.iter().zip(&xs).map(|(&id, x)| server.submit_step(id, x).unwrap()).collect();
    let mut decode_steps = [0usize; DECODERS];

    // The long prompt arrives on tenant 1 while decode traffic is live.
    let prefill_id = server.create_session(1).unwrap();
    let mut prompt = vec![0.0f32; hidden * PROMPT_TOKENS];
    fill_uniform(&mut prompt, &mut Xorshift::new(9900), -0.5, 0.5);
    let prefill_rx = server.submit_prefill(prefill_id, &prompt, PROMPT_TOKENS).unwrap();

    // Drive manually; keep every decode session's next step queued so the
    // batcher always has live decode work next to the prefill chunks.
    let mut decode_between_chunks = vec![0u64; PROMPT_TOKENS / CHUNK + 1];
    let mut prefill_out = None;
    while prefill_out.is_none() {
        assert!(server.pump() > 0, "work is always pending until the prefill completes");
        let chunks_done = server.stats().prefill_chunks.load(std::sync::atomic::Ordering::Relaxed);
        for (s, rx) in rxs.iter_mut().enumerate() {
            if let Ok(res) = rx.try_recv() {
                let y = res.unwrap();
                decode_steps[s] += 1;
                decode_between_chunks[chunks_done as usize] += 1;
                xs[s] = y.clone();
                *rx = server.submit_step(decode_ids[s], &y).unwrap();
            }
        }
        if let Ok(res) = prefill_rx.try_recv() {
            prefill_out = Some(res.unwrap());
        }
    }
    let prefill_out = prefill_out.unwrap();
    // Let the tail decode steps finish (each session has exactly one
    // outstanding step).
    while server.pump() > 0 {}
    for (s, rx) in rxs.into_iter().enumerate() {
        xs[s] = rx.recv().unwrap().unwrap();
    }

    let snap = server.stats().snapshot();
    assert_eq!(snap.prefill_chunks, (PROMPT_TOKENS / CHUNK) as u64);
    assert_eq!(snap.prefills, 1);
    // Interleaving, counted two ways: (a) most chunk-bearing batches also
    // carried decode lanes; (b) decode steps completed *between* the
    // chunks (at several distinct chunk-progress points), not just before
    // the first or after the last.
    assert!(
        snap.mixed_batches >= 6,
        "prefill chunks must share batches with decode lanes: {} mixed of {} batches",
        snap.mixed_batches,
        snap.batches
    );
    let interleave_points =
        decode_between_chunks[1..PROMPT_TOKENS / CHUNK].iter().filter(|&&c| c > 0).count();
    assert!(
        interleave_points >= 4,
        "decode completions must land between prefill chunks: {decode_between_chunks:?}"
    );
    let mid_prefill_decode: u64 = decode_between_chunks[1..PROMPT_TOKENS / CHUNK].iter().sum();
    assert!(
        mid_prefill_decode >= DECODERS as u64,
        "decode must keep completing while the prefill is in flight"
    );

    // Correctness of the interleaved prefill: bitwise equal to a chunked
    // forward (same widths, same kernels), within tolerance of the
    // whole-prompt forward.
    let bpool = ThreadPool::new(2);
    let mut st = model.new_state(64);
    let chunked = model.forward_chunked(&mut st, &prompt, PROMPT_TOKENS, CHUNK, &bpool);
    assert_eq!(prefill_out, chunked, "served chunked prefill must match forward_chunked bitwise");
    let mut st_whole = model.new_state(64);
    let whole = model.forward(&mut st_whole, &prompt, PROMPT_TOKENS, &bpool);
    let err = max_rel_err(&prefill_out, &whole);
    assert!(err <= 1e-5, "chunked vs whole-prompt prefill rel err {err}");

    // The prefill session's KV context really holds all 32 tokens: its
    // next decode step must continue bit-identically from the chunked
    // baseline state.
    let x_next = last_token(&prefill_out, hidden);
    let rx = server.submit_step(prefill_id, &x_next).unwrap();
    while server.pump() == 0 {}
    let stepped = rx.recv().unwrap().unwrap();
    assert_eq!(stepped, model.forward(&mut st, &x_next, 1, &bpool));

    // The decode streams themselves stayed correct under the interleaving:
    // every session's final output equals a sequential closed-loop
    // baseline of the same length, bitwise.
    for (s, &id) in decode_ids.iter().enumerate() {
        let mut st = model.new_state(64);
        let mut x = {
            let mut x = vec![0.0f32; hidden];
            fill_uniform(&mut x, &mut Xorshift::new(8800 + s as u64), -0.5, 0.5);
            x
        };
        for _ in 0..=decode_steps[s] {
            x = model.forward(&mut st, &x, 1, &bpool);
        }
        assert_eq!(x, xs[s], "decode session {s} diverged under interleaved prefill");
        assert_eq!(server.close_session(id).unwrap(), decode_steps[s] as u64 + 1);
    }
}

#[test]
fn per_tenant_fairness_under_flood() {
    // One tenant floods its ring; another submits a single step. The
    // trickle tenant's request must ride the *first* batch.
    let cfg = DecoderConfig::scaled_for_tests();
    let hidden = cfg.hidden;
    let model = Arc::new(DecoderModel::new(cfg, 7));
    let pool = Arc::new(ThreadPool::new(2));
    let server = Server::new(
        model,
        pool,
        ServerConfig {
            tenants: 2,
            max_batch: 4,
            coalesce_wait: Duration::ZERO,
            ..Default::default()
        },
    );
    let x = vec![0.1f32; hidden];
    let flood: Vec<_> = (0..6)
        .map(|_| {
            let id = server.create_session(0).unwrap();
            server.submit_step(id, &x).unwrap()
        })
        .collect();
    let trickle_id = server.create_session(1).unwrap();
    let trickle = server.submit_step(trickle_id, &x).unwrap();
    assert_eq!(server.pump(), 4);
    trickle
        .recv_timeout(Duration::from_secs(5))
        .expect("trickle tenant served in first batch")
        .unwrap();
    server.pump();
    for rx in flood {
        rx.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
    }
}
