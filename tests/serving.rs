//! Integration test of the pl-serve runtime: N concurrent sessions drive
//! prefill + decode steps through the batched server, and every session's
//! outputs must be bit-identical to a sequential, unbatched `Decoder`
//! baseline over the same shared weights.

use pl_dnn::{Decoder, DecoderConfig, DecoderModel};
use pl_runtime::ThreadPool;
use pl_serve::{Server, ServerConfig};
use pl_tensor::{fill_uniform, Xorshift};
use std::sync::Arc;
use std::time::Duration;

const SESSIONS: usize = 6;
const PROMPT: usize = 3;
const STEPS: usize = 8;
const KV: usize = 32;

fn prompt_for(session: usize, hidden: usize) -> Vec<f32> {
    let mut x = vec![0.0f32; hidden * PROMPT];
    fill_uniform(&mut x, &mut Xorshift::new(4000 + session as u64), -0.5, 0.5);
    x
}

/// Feed the last token's transformed state back as the next input — a
/// deterministic stand-in for sampling that exercises the KV-cached loop.
fn last_token(y: &[f32], hidden: usize) -> Vec<f32> {
    y[y.len() - hidden..].to_vec()
}

#[test]
fn concurrent_batched_sessions_match_unbatched_decoder() {
    let cfg = DecoderConfig::scaled_for_tests();
    let hidden = cfg.hidden;
    let model = Arc::new(DecoderModel::new(cfg, 31337));
    let pool = Arc::new(ThreadPool::new(4));
    let mut server = Server::new(
        Arc::clone(&model),
        Arc::clone(&pool),
        ServerConfig {
            tenants: 3,
            max_batch: SESSIONS,
            kv_capacity: KV,
            coalesce_wait: Duration::from_millis(2),
            ..Default::default()
        },
    );
    server.start();

    // N concurrent clients: prefill, then STEPS closed-loop decode steps.
    let mut served: Vec<Vec<Vec<f32>>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for s in 0..SESSIONS {
            let server = &server;
            handles.push(scope.spawn(move || {
                let id = server.create_session(s % 3).expect("admitted");
                let y = server.prefill(id, &prompt_for(s, hidden), PROMPT).unwrap();
                let mut x = last_token(&y, hidden);
                let mut outs = Vec::with_capacity(STEPS);
                for _ in 0..STEPS {
                    let y = server.step(id, &x).unwrap();
                    x = y.clone();
                    outs.push(y);
                }
                assert_eq!(server.close_session(id).unwrap(), STEPS as u64);
                outs
            }));
        }
        for h in handles {
            served.push(h.join().unwrap());
        }
    });

    let snap = server.stats().snapshot();
    server.shutdown();
    assert_eq!(snap.completed, (SESSIONS * STEPS) as u64);
    assert_eq!(snap.prefills, SESSIONS as u64);

    // Sequential unbatched baseline over the same weights.
    for (s, served_session) in served.iter().enumerate() {
        let mut d = Decoder::from_model(Arc::clone(&model), KV);
        let y = d.prefill(&prompt_for(s, hidden), PROMPT, &pool);
        let mut x = last_token(&y, hidden);
        for (t, served_y) in served_session.iter().enumerate() {
            let y = d.step(&x, &pool);
            assert_eq!(&y, served_y, "session {s} step {t} diverged from baseline");
            x = y;
        }
    }
}

use pl_tensor::max_rel_err;

#[test]
fn fused_batched_sessions_match_serial_within_tolerance() {
    // The same multi-tenant multi-step workload as the bit-identity test,
    // but through the fused cross-session path (`ServerConfig::fused`):
    // every session's whole output stream must agree with the sequential
    // unbatched baseline within 1e-5 relative error, and the fused GEMM
    // shapes must be observable in the stats.
    let cfg = DecoderConfig::scaled_for_tests();
    let hidden = cfg.hidden;
    let model = Arc::new(DecoderModel::new(cfg, 90210));
    let pool = Arc::new(ThreadPool::new(4));
    let mut server = Server::new(
        Arc::clone(&model),
        Arc::clone(&pool),
        ServerConfig {
            tenants: 3,
            max_batch: SESSIONS,
            kv_capacity: KV,
            coalesce_wait: Duration::from_millis(2),
            fused: true,
            ..Default::default()
        },
    );
    server.start();

    let mut served: Vec<Vec<Vec<f32>>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for s in 0..SESSIONS {
            let server = &server;
            handles.push(scope.spawn(move || {
                let id = server.create_session(s % 3).expect("admitted");
                let y = server.prefill(id, &prompt_for(s, hidden), PROMPT).unwrap();
                let mut x = last_token(&y, hidden);
                let mut outs = Vec::with_capacity(STEPS);
                for _ in 0..STEPS {
                    let y = server.step(id, &x).unwrap();
                    x = y.clone();
                    outs.push(y);
                }
                assert_eq!(server.close_session(id).unwrap(), STEPS as u64);
                outs
            }));
        }
        for h in handles {
            served.push(h.join().unwrap());
        }
    });

    let snap = server.stats().snapshot();
    server.shutdown();
    assert_eq!(snap.completed, (SESSIONS * STEPS) as u64);
    assert_eq!(snap.fused_batches, snap.batches, "every batch ran fused");
    assert!(!snap.fused_gemm_shapes.is_empty(), "fused GEMM shapes recorded");
    let cfg = *model.config();
    for &((m, n, k), _) in &snap.fused_gemm_shapes {
        assert!((1..=SESSIONS).contains(&n), "n is a batch size, got {n}");
        assert!(
            (m, k) == (cfg.hidden, cfg.hidden)
                || (m, k) == (cfg.ffn, cfg.hidden)
                || (m, k) == (cfg.hidden, cfg.ffn),
            "unexpected fused shape {m}x{n}x{k}"
        );
    }

    // Sequential unbatched baseline; tolerance, not bit-identity — the
    // fused path reassociates the projections over the batch dimension.
    for (s, served_session) in served.iter().enumerate() {
        let mut d = Decoder::from_model(Arc::clone(&model), KV);
        let y = d.prefill(&prompt_for(s, hidden), PROMPT, &pool);
        let mut x = last_token(&y, hidden);
        for (t, served_y) in served_session.iter().enumerate() {
            let y = d.step(&x, &pool);
            let err = max_rel_err(&y, served_y);
            assert!(err <= 1e-5, "session {s} step {t}: rel err {err}");
            // Continue the baseline from the *served* stream so a single
            // within-tolerance divergence cannot compound across steps.
            x = served_y.clone();
        }
    }
}

#[test]
fn ring_full_backpressure_is_an_error_and_the_session_recovers() {
    // Satellite coverage for the bounded-ring contract: filling a
    // tenant's ring must surface `Backpressure` to the submitter
    // *immediately* (no hang, no silent drop), every previously accepted
    // step must still execute, and after a `pump` drains the ring the
    // same session submits and decodes normally again.
    let cfg = DecoderConfig::scaled_for_tests();
    let hidden = cfg.hidden;
    let model = Arc::new(DecoderModel::new(cfg, 555));
    let pool = Arc::new(ThreadPool::new(2));
    let capacity = 3usize;
    let server = Server::new(
        Arc::clone(&model),
        pool,
        ServerConfig {
            queue_capacity: capacity,
            coalesce_wait: Duration::ZERO,
            kv_capacity: KV,
            ..Default::default()
        },
    );
    let id = server.create_session(0).unwrap();
    let xs: Vec<Vec<f32>> = (0..=capacity)
        .map(|t| {
            let mut x = vec![0.0f32; hidden];
            fill_uniform(&mut x, &mut Xorshift::new(6001 + t as u64), -0.5, 0.5);
            x
        })
        .collect();
    // Fill the ring exactly to capacity, then overflow it.
    let accepted: Vec<_> = (0..capacity).map(|t| server.submit_step(id, &xs[t]).unwrap()).collect();
    for attempt in 0..2 {
        match server.submit_step(id, &xs[capacity]) {
            Err(ServeError::Backpressure { tenant: 0 }) => {}
            other => panic!("overflow attempt {attempt} must bounce, got {other:?}"),
        }
    }
    assert_eq!(server.stats().snapshot().rejected_backpressure, 2);
    // Every accepted step still executes: pipelined steps of one session
    // ride consecutive batches (1 per pump), in submission order.
    for t in 0..capacity {
        assert_eq!(server.pump(), 1, "pump {t} must make progress");
    }
    let outs: Vec<Vec<f32>> = accepted.into_iter().map(|rx| rx.recv().unwrap().unwrap()).collect();
    // The session recovers: the post-backpressure submit is accepted and
    // continues the same KV stream.
    let rx = server.submit_step(id, &xs[capacity]).expect("ring drained, submit accepted");
    assert_eq!(server.pump(), 1);
    let recovered = rx.recv().unwrap().unwrap();
    // Baseline: the same 4-step stream, unbatched.
    let mut st = model.new_state(KV);
    let bpool = ThreadPool::new(2);
    for (t, out) in outs.iter().enumerate() {
        assert_eq!(out, &model.forward(&mut st, &xs[t], 1, &bpool), "step {t}");
    }
    assert_eq!(recovered, model.forward(&mut st, &xs[capacity], 1, &bpool));
    assert_eq!(server.close_session(id).unwrap(), capacity as u64 + 1);
}

use pl_serve::ServeError;

#[test]
fn per_tenant_fairness_under_flood() {
    // One tenant floods its ring; another submits a single step. The
    // trickle tenant's request must ride the *first* batch.
    let cfg = DecoderConfig::scaled_for_tests();
    let hidden = cfg.hidden;
    let model = Arc::new(DecoderModel::new(cfg, 7));
    let pool = Arc::new(ThreadPool::new(2));
    let server = Server::new(
        model,
        pool,
        ServerConfig {
            tenants: 2,
            max_batch: 4,
            coalesce_wait: Duration::ZERO,
            ..Default::default()
        },
    );
    let x = vec![0.1f32; hidden];
    let flood: Vec<_> = (0..6)
        .map(|_| {
            let id = server.create_session(0).unwrap();
            server.submit_step(id, &x).unwrap()
        })
        .collect();
    let trickle_id = server.create_session(1).unwrap();
    let trickle = server.submit_step(trickle_id, &x).unwrap();
    assert_eq!(server.pump(), 4);
    trickle
        .recv_timeout(Duration::from_secs(5))
        .expect("trickle tenant served in first batch")
        .unwrap();
    server.pump();
    for rx in flood {
        rx.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
    }
}
