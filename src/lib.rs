//! Workspace root of the PARLOOPER/TPP reproduction.
//!
//! This crate only anchors the cross-crate integration tests (`tests/`)
//! and the runnable examples (`examples/`); the library surface lives in
//! the member crates:
//!
//! * [`parlooper`] — the loop framework (spec strings, plans, execution)
//! * [`pl_tpp`] — the Tensor Processing Primitives (BRGEMM et al.)
//! * [`pl_tensor`] — layouts, BF16, BCSC
//! * [`pl_runtime`] — the OpenMP-like thread runtime
//! * [`pl_kernels`] — GEMM / MLP / convolution / Block-SpMM kernels
//! * [`pl_dnn`] — BERT, sparse BERT, LLM decoding, ResNet-50 pieces
//! * [`pl_perfmodel`] — platform models + the §II-E cache simulator
//! * [`pl_autotuner`] — spec-string generation, search, tuning DB
//! * [`pl_serve`] — multi-tenant dynamically-batched inference serving
//!   (sessions, fair admission, PAR-MODE batch execution, metrics)

pub use parlooper;
pub use pl_autotuner;
pub use pl_dnn;
pub use pl_kernels;
pub use pl_perfmodel;
pub use pl_runtime;
pub use pl_serve;
pub use pl_tensor;
pub use pl_tpp;
